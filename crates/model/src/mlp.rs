//! A small genuinely-trained MLP with manual backpropagation and
//! data-parallel gradient all-reduce.
//!
//! The deterministic trainer ([`crate::trainer`]) gives bitwise-verifiable
//! state evolution; this module complements it with *real learning* so the
//! quickstart examples demonstrate the checkpoint system on an actual
//! optimization loop: 2-layer MLP regression, Adam, per-rank batch shards,
//! gradients averaged over the DP group via [`bcp_collectives`].

use crate::states::{StateDict, StateEntry};
use bcp_collectives::{Communicator, ReduceOp};
use bcp_tensor::{DType, Tensor};
use bcp_topology::ShardSpec;

/// A 2-layer MLP `out = W2 · tanh(W1·x + b1) + b2` trained with Adam.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Input dimension.
    pub dim_in: usize,
    /// Hidden dimension.
    pub dim_hidden: usize,
    params: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

/// Adam hyper-parameters for [`Mlp::train_step`].
#[derive(Debug, Clone, Copy)]
pub struct MlpAdam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
}

impl Default for MlpAdam {
    fn default() -> MlpAdam {
        MlpAdam { lr: 1e-2, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

impl Mlp {
    /// Deterministic initialization from a seed.
    pub fn new(dim_in: usize, dim_hidden: usize, seed: u64) -> Mlp {
        let n = Self::param_count(dim_in, dim_hidden);
        let scale = (1.0 / dim_in as f32).sqrt();
        let params = (0..n).map(|i| bcp_tensor::fill::value_at(seed, i as u64) * scale).collect();
        Mlp { dim_in, dim_hidden, params, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    fn param_count(dim_in: usize, dim_hidden: usize) -> usize {
        dim_hidden * dim_in + dim_hidden + dim_hidden + 1
    }

    fn split(&self) -> (usize, usize, usize) {
        let w1_end = self.dim_hidden * self.dim_in;
        let b1_end = w1_end + self.dim_hidden;
        let w2_end = b1_end + self.dim_hidden;
        (w1_end, b1_end, w2_end)
    }

    /// Scalar prediction for input `x` (length `dim_in`).
    pub fn forward(&self, x: &[f32]) -> f32 {
        let (w1_end, b1_end, w2_end) = self.split();
        let (w1, rest) = self.params.split_at(w1_end);
        let (b1, rest2) = rest.split_at(b1_end - w1_end);
        let (w2, b2) = rest2.split_at(w2_end - b1_end);
        let mut out = b2[0];
        for h in 0..self.dim_hidden {
            let mut a = b1[h];
            for (i, &xi) in x.iter().enumerate() {
                a += w1[h * self.dim_in + i] * xi;
            }
            out += w2[h] * a.tanh();
        }
        out
    }

    /// Mean-squared-error loss and gradient over a batch.
    fn loss_and_grad(&self, batch: &[(Vec<f32>, f32)]) -> (f32, Vec<f32>) {
        let (w1_end, b1_end, w2_end) = self.split();
        let mut grad = vec![0.0f32; self.params.len()];
        let mut loss = 0.0f32;
        for (x, y) in batch {
            // Forward with cached activations.
            let mut pre = vec![0.0f32; self.dim_hidden];
            let mut act = vec![0.0f32; self.dim_hidden];
            let mut out = self.params[w2_end]; // b2
            for h in 0..self.dim_hidden {
                let mut a = self.params[w1_end + h]; // b1[h]
                for (i, &xi) in x.iter().enumerate() {
                    a += self.params[h * self.dim_in + i] * xi;
                }
                pre[h] = a;
                act[h] = a.tanh();
                out += self.params[b1_end + h] * act[h]; // w2[h]
            }
            let err = out - y;
            loss += 0.5 * err * err;
            // Backward.
            grad[w2_end] += err; // d b2
            for h in 0..self.dim_hidden {
                grad[b1_end + h] += err * act[h]; // d w2
                let dh = err * self.params[b1_end + h] * (1.0 - pre[h].tanh().powi(2));
                grad[w1_end + h] += dh; // d b1
                for (i, &xi) in x.iter().enumerate() {
                    grad[h * self.dim_in + i] += dh * xi; // d w1
                }
            }
        }
        let n = batch.len().max(1) as f32;
        for g in &mut grad {
            *g /= n;
        }
        (loss / n, grad)
    }

    /// One data-parallel training step: local backprop on this rank's batch
    /// shard, gradient averaging over the group (when `comm` is given),
    /// Adam update. Returns the (group-averaged) loss.
    pub fn train_step(
        &mut self,
        batch: &[(Vec<f32>, f32)],
        adam: MlpAdam,
        comm: Option<&Communicator>,
    ) -> f32 {
        let (local_loss, mut grad) = self.loss_and_grad(batch);
        let mut loss = local_loss;
        if let Some(c) = comm {
            let n = c.size() as f32;
            let mut payload = grad.clone();
            payload.push(local_loss);
            let summed = c.all_reduce_f32(payload, ReduceOp::Sum).expect("healthy group");
            loss = summed[grad.len()] / n;
            for (g, s) in grad.iter_mut().zip(&summed) {
                *g = s / n;
            }
        }
        self.t += 1;
        let bc1 = 1.0 - adam.beta1.powi(self.t as i32);
        let bc2 = 1.0 - adam.beta2.powi(self.t as i32);
        #[allow(clippy::needless_range_loop)] // four parallel arrays share the index
        for i in 0..self.params.len() {
            self.m[i] = adam.beta1 * self.m[i] + (1.0 - adam.beta1) * grad[i];
            self.v[i] = adam.beta2 * self.v[i] + (1.0 - adam.beta2) * grad[i] * grad[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.params[i] -= adam.lr * mhat / (vhat.sqrt() + adam.eps);
        }
        loss
    }

    /// Export model + optimizer as replicated state dicts (DDP-style), ready
    /// for `bytecheckpoint::save`.
    pub fn to_state_dicts(&self) -> (StateDict, StateDict) {
        let mut model = StateDict::default();
        let mut optim = StateDict::default();
        let n = self.params.len();
        let entry = |fqn: &str, data: &[f32]| StateEntry {
            fqn: fqn.to_string(),
            global_shape: vec![n],
            dtype: DType::F32,
            spec: ShardSpec::Replicated,
            tensor: Tensor::from_f32(vec![n], data).expect("sized"),
        };
        model.insert(entry("mlp.flat_params", &self.params));
        optim.insert(entry("optim.exp_avg.mlp.flat_params", &self.m));
        optim.insert(entry("optim.exp_avg_sq.mlp.flat_params", &self.v));
        let step_entry = StateEntry {
            fqn: "optim.step.mlp".to_string(),
            global_shape: vec![1],
            dtype: DType::I64,
            spec: ShardSpec::Replicated,
            tensor: Tensor::from_bytes(
                DType::I64,
                vec![1],
                bytes::Bytes::from((self.t as i64).to_le_bytes().to_vec()),
            )
            .expect("sized"),
        };
        optim.insert(step_entry);
        (model, optim)
    }

    /// Restore model + optimizer from state dicts produced by
    /// [`Mlp::to_state_dicts`] (possibly after a save/load round trip).
    pub fn load_state_dicts(&mut self, model: &StateDict, optim: &StateDict) {
        self.params =
            model.get("mlp.flat_params").expect("params entry").tensor.to_f32_vec().expect("f32");
        self.m = optim
            .get("optim.exp_avg.mlp.flat_params")
            .expect("exp_avg entry")
            .tensor
            .to_f32_vec()
            .expect("f32");
        self.v = optim
            .get("optim.exp_avg_sq.mlp.flat_params")
            .expect("exp_avg_sq entry")
            .tensor
            .to_f32_vec()
            .expect("f32");
        let step = optim.get("optim.step.mlp").expect("step entry");
        let b = step.tensor.bytes().expect("materialized");
        self.t = i64::from_le_bytes(b[..8].try_into().expect("8 bytes")) as u64;
    }

    /// Bitwise equality of all learnable and optimizer state.
    pub fn state_eq(&self, other: &Mlp) -> bool {
        let eq = |a: &[f32], b: &[f32]| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        };
        self.t == other.t
            && eq(&self.params, &other.params)
            && eq(&self.m, &other.m)
            && eq(&self.v, &other.v)
    }
}

/// Synthetic regression task: `y = sin(3 x0) + 0.5 x1` with deterministic
/// sampling. `index` addresses the global sample stream so DP ranks can
/// shard batches without overlap.
pub fn synthetic_sample(seed: u64, index: u64, dim_in: usize) -> (Vec<f32>, f32) {
    let x: Vec<f32> = (0..dim_in)
        .map(|d| bcp_tensor::fill::value_at(seed ^ 0xDA7A, index * dim_in as u64 + d as u64))
        .collect();
    let y = (3.0 * x[0]).sin() + 0.5 * x.get(1).copied().unwrap_or(0.0);
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_collectives::{Backend, CommWorld};

    fn batch(seed: u64, start: u64, n: u64, dim: usize) -> Vec<(Vec<f32>, f32)> {
        (start..start + n).map(|i| synthetic_sample(seed, i, dim)).collect()
    }

    #[test]
    fn single_worker_training_reduces_loss() {
        let mut mlp = Mlp::new(2, 16, 1);
        let adam = MlpAdam::default();
        let first = mlp.train_step(&batch(9, 0, 64, 2), adam, None);
        let mut last = first;
        for s in 1..200 {
            last = mlp.train_step(&batch(9, s * 64, 64, 2), adam, None);
        }
        assert!(last < first * 0.5, "loss did not improve: {first} -> {last}");
    }

    #[test]
    fn data_parallel_matches_single_worker() {
        // 2 DP workers each on half the batch must produce exactly the same
        // updates as 1 worker on the full batch (sum/mean in same order).
        let adam = MlpAdam::default();
        let world = CommWorld::new(2, Backend::Flat);
        let mut handles = Vec::new();
        for rank in 0..2usize {
            let world = world.clone();
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank).unwrap();
                let mut mlp = Mlp::new(2, 8, 3);
                for s in 0..10u64 {
                    let b = batch(5, s * 32 + (rank as u64) * 16, 16, 2);
                    mlp.train_step(&b, adam, Some(&comm));
                }
                mlp
            }));
        }
        let results: Vec<Mlp> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results[0].state_eq(&results[1]), "replicas must stay in lockstep");
    }

    #[test]
    fn state_dict_round_trip_is_bitwise() {
        let mut mlp = Mlp::new(3, 8, 11);
        let adam = MlpAdam::default();
        for s in 0..5 {
            mlp.train_step(&batch(1, s * 8, 8, 3), adam, None);
        }
        let (model, optim) = mlp.to_state_dicts();
        let mut restored = Mlp::new(3, 8, 999); // different init
        restored.load_state_dicts(&model, &optim);
        assert!(mlp.state_eq(&restored));
        // And training continues identically.
        let a = mlp.train_step(&batch(1, 100, 8, 3), adam, None);
        let b = restored.train_step(&batch(1, 100, 8, 3), adam, None);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
