//! Transformer architectures as parameter inventories.
//!
//! The checkpoint system sees a model as a set of named tensors with global
//! shapes and framework sharding behaviour. This module generates that set
//! for the three architecture families the paper evaluates (GPT for text,
//! DiT for video generation, ViT for image encoding), including the
//! TP-sharding role of every operator (Appendix A: "GEMM operators in
//! attention and MLP blocks are sharded along different dimensions, while
//! other operators like LayerNorm are replicated").

use bcp_tensor::DType;
use serde::{Deserialize, Serialize};

/// Architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArchKind {
    /// Decoder-only language model (tGPT workloads).
    Gpt,
    /// Diffusion transformer (vDiT video-generation workloads).
    DiT,
    /// Vision transformer encoder (image workloads).
    ViT,
}

/// How tensor parallelism splits a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TpRole {
    /// Column-parallel GEMM: split along output dim (dim 0). QKV and MLP-up.
    Column,
    /// Row-parallel GEMM: split along input dim (dim 1). Attention-out and
    /// MLP-down.
    Row,
    /// Replicated across the TP group (LayerNorm, biases, embeddings of
    /// small operators).
    Replicated,
    /// Vocabulary-parallel embedding: split along the vocab dim (dim 0).
    Vocab,
    /// Expert-parallel MoE weight: split along the experts dim (dim 0)
    /// across the expert-parallel group (Appendix A's
    /// `reshard_megatron_ckpt/reshard_moe` scenario).
    Expert,
}

/// Which pipeline stage owns a parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageHint {
    /// Pre-transformer parameters (embeddings / patch projection): stage 0.
    First,
    /// Post-transformer parameters (final norm, output head): last stage.
    Last,
    /// Parameter of transformer layer `i`; stage owning that layer.
    Layer(usize),
}

/// One parameter: its identity, geometry and parallel behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDef {
    /// Fully qualified name, e.g. `layers.7.attn.qkv.weight`.
    pub fqn: String,
    /// Global (unsharded) shape.
    pub shape: Vec<usize>,
    /// Storage dtype of the model weight.
    pub dtype: DType,
    /// TP sharding role.
    pub tp: TpRole,
    /// Pipeline stage ownership.
    pub stage: StageHint,
}

impl ParamDef {
    /// Number of elements in the global tensor.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }
}

/// A transformer model configuration (Table 3 style).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Model name used in FQN-independent contexts (reports, paths).
    pub name: String,
    /// Architecture family.
    pub kind: ArchKind,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer layers.
    pub layers: usize,
    /// Vocabulary size (GPT) / patch-input dim (DiT, ViT).
    pub vocab: usize,
    /// MLP expansion factor (4 in the classic transformer).
    pub ffn_mult: usize,
    /// Weight dtype.
    pub dtype: DType,
    /// Experts per MoE layer; 0 = dense MLP. MoE layers replace the dense
    /// MLP with a router (kept in fp32, the Appendix A `--gate_fp32` knob)
    /// plus expert-parallel up/down projections.
    pub num_experts: usize,
}

impl TransformerConfig {
    /// Enumerate every parameter with its geometry and parallel behaviour.
    pub fn params(&self) -> Vec<ParamDef> {
        let h = self.hidden;
        let ffn = self.ffn_mult * h;
        let dt = self.dtype;
        let mut out = Vec::new();
        let p = |fqn: String, shape: Vec<usize>, tp: TpRole, stage: StageHint| ParamDef {
            fqn,
            shape,
            dtype: dt,
            tp,
            stage,
        };

        // Input side.
        match self.kind {
            ArchKind::Gpt => {
                out.push(p(
                    "embedding.word.weight".into(),
                    vec![self.vocab, h],
                    TpRole::Vocab,
                    StageHint::First,
                ));
            }
            ArchKind::DiT => {
                out.push(p(
                    "patch_embed.proj.weight".into(),
                    vec![h, self.vocab],
                    TpRole::Replicated,
                    StageHint::First,
                ));
                out.push(p(
                    "patch_embed.proj.bias".into(),
                    vec![h],
                    TpRole::Replicated,
                    StageHint::First,
                ));
                out.push(p(
                    "timestep_mlp.fc1.weight".into(),
                    vec![ffn, h],
                    TpRole::Column,
                    StageHint::First,
                ));
                out.push(p(
                    "timestep_mlp.fc2.weight".into(),
                    vec![h, ffn],
                    TpRole::Row,
                    StageHint::First,
                ));
            }
            ArchKind::ViT => {
                out.push(p(
                    "patch_embed.proj.weight".into(),
                    vec![h, self.vocab],
                    TpRole::Replicated,
                    StageHint::First,
                ));
                out.push(p("cls_token".into(), vec![1, h], TpRole::Replicated, StageHint::First));
                out.push(p("pos_embed".into(), vec![257, h], TpRole::Replicated, StageHint::First));
            }
        }

        // Transformer layers.
        for l in 0..self.layers {
            let s = StageHint::Layer(l);
            let pre = format!("layers.{l}");
            out.push(p(format!("{pre}.ln1.weight"), vec![h], TpRole::Replicated, s));
            out.push(p(format!("{pre}.ln1.bias"), vec![h], TpRole::Replicated, s));
            out.push(p(format!("{pre}.attn.qkv.weight"), vec![3 * h, h], TpRole::Column, s));
            out.push(p(format!("{pre}.attn.qkv.bias"), vec![3 * h], TpRole::Column, s));
            out.push(p(format!("{pre}.attn.out.weight"), vec![h, h], TpRole::Row, s));
            out.push(p(format!("{pre}.attn.out.bias"), vec![h], TpRole::Replicated, s));
            out.push(p(format!("{pre}.ln2.weight"), vec![h], TpRole::Replicated, s));
            out.push(p(format!("{pre}.ln2.bias"), vec![h], TpRole::Replicated, s));
            if self.num_experts > 0 {
                // MoE block: fp32 router (replicated) + expert-parallel FFNs.
                out.push(ParamDef {
                    fqn: format!("{pre}.moe.router.weight"),
                    shape: vec![self.num_experts, h],
                    dtype: DType::F32,
                    tp: TpRole::Replicated,
                    stage: s,
                });
                out.push(p(
                    format!("{pre}.moe.experts.up.weight"),
                    vec![self.num_experts, ffn, h],
                    TpRole::Expert,
                    s,
                ));
                out.push(p(
                    format!("{pre}.moe.experts.down.weight"),
                    vec![self.num_experts, h, ffn],
                    TpRole::Expert,
                    s,
                ));
            } else {
                out.push(p(format!("{pre}.mlp.up.weight"), vec![ffn, h], TpRole::Column, s));
                out.push(p(format!("{pre}.mlp.up.bias"), vec![ffn], TpRole::Column, s));
                out.push(p(format!("{pre}.mlp.down.weight"), vec![h, ffn], TpRole::Row, s));
                out.push(p(format!("{pre}.mlp.down.bias"), vec![h], TpRole::Replicated, s));
            }
            if self.kind == ArchKind::DiT {
                // adaLN modulation: DiT conditions each block on timestep.
                out.push(p(format!("{pre}.adaln.weight"), vec![6 * h, h], TpRole::Column, s));
                out.push(p(format!("{pre}.adaln.bias"), vec![6 * h], TpRole::Column, s));
                // Video DiT blocks add temporal self-attention and
                // text-conditioning cross-attention.
                out.push(p(format!("{pre}.tattn.qkv.weight"), vec![3 * h, h], TpRole::Column, s));
                out.push(p(format!("{pre}.tattn.out.weight"), vec![h, h], TpRole::Row, s));
                out.push(p(format!("{pre}.xattn.q.weight"), vec![h, h], TpRole::Column, s));
                out.push(p(format!("{pre}.xattn.kv.weight"), vec![2 * h, h], TpRole::Column, s));
                out.push(p(format!("{pre}.xattn.out.weight"), vec![h, h], TpRole::Row, s));
            }
        }

        // Output side.
        out.push(p("final_ln.weight".into(), vec![h], TpRole::Replicated, StageHint::Last));
        out.push(p("final_ln.bias".into(), vec![h], TpRole::Replicated, StageHint::Last));
        match self.kind {
            ArchKind::Gpt => {
                out.push(p(
                    "lm_head.weight".into(),
                    vec![self.vocab, h],
                    TpRole::Vocab,
                    StageHint::Last,
                ));
            }
            ArchKind::DiT => {
                out.push(p(
                    "final_proj.weight".into(),
                    vec![self.vocab, h],
                    TpRole::Replicated,
                    StageHint::Last,
                ));
            }
            ArchKind::ViT => {
                out.push(p(
                    "head.weight".into(),
                    vec![1000, h],
                    TpRole::Replicated,
                    StageHint::Last,
                ));
            }
        }
        out
    }

    /// Total parameter count.
    pub fn num_params(&self) -> u64 {
        self.params().iter().map(|p| p.numel() as u64).sum()
    }

    /// Total model-weight bytes at the configured dtype.
    pub fn weight_bytes(&self) -> u64 {
        self.num_params() * self.dtype.size() as u64
    }

    /// Which PP stage owns each layer: layers split contiguously and evenly.
    pub fn stage_of_layer(&self, layer: usize, pp: usize) -> usize {
        // Invert even_split: find the stage whose range contains `layer`.
        for stage in 0..pp {
            let (off, len) = bcp_tensor::layout::even_split(self.layers, pp, stage);
            if layer >= off && layer < off + len {
                return stage;
            }
        }
        pp - 1
    }

    /// Which PP stage owns a parameter.
    pub fn stage_of(&self, param: &ParamDef, pp: usize) -> usize {
        match param.stage {
            StageHint::First => 0,
            StageHint::Last => pp - 1,
            StageHint::Layer(l) => self.stage_of_layer(l, pp),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn gpt_param_inventory_shapes() {
        let cfg = zoo::tiny_gpt();
        let params = cfg.params();
        let qkv = params.iter().find(|p| p.fqn == "layers.0.attn.qkv.weight").unwrap();
        assert_eq!(qkv.shape, vec![3 * cfg.hidden, cfg.hidden]);
        assert_eq!(qkv.tp, TpRole::Column);
        let out = params.iter().find(|p| p.fqn == "layers.0.attn.out.weight").unwrap();
        assert_eq!(out.tp, TpRole::Row);
        let ln = params.iter().find(|p| p.fqn == "layers.0.ln1.weight").unwrap();
        assert_eq!(ln.tp, TpRole::Replicated);
        // FQNs are unique.
        let mut names: Vec<&String> = params.iter().map(|p| &p.fqn).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), params.len());
    }

    #[test]
    fn paper_models_have_expected_scale() {
        // tGPT 70B: "Hidden 8192, #Heads 64, #Layers 80" — the resulting
        // parameter count must land in the tens of billions.
        let cfg = zoo::tgpt_70b();
        let n = cfg.num_params();
        assert!(n > 60e9 as u64 && n < 80e9 as u64, "tGPT-70B has {n} params");
        let cfg = zoo::vdit_4b();
        let n = cfg.num_params();
        assert!(n > 3e9 as u64 && n < 5e9 as u64, "vDiT-4B has {n} params");
    }

    #[test]
    fn stage_assignment_covers_all_layers() {
        let cfg = zoo::tiny_gpt(); // 4 layers
        for pp in [1, 2, 4] {
            for l in 0..cfg.layers {
                let s = cfg.stage_of_layer(l, pp);
                assert!(s < pp);
            }
            // First layer on stage 0, last layer on the last stage.
            assert_eq!(cfg.stage_of_layer(0, pp), 0);
            assert_eq!(cfg.stage_of_layer(cfg.layers - 1, pp), pp - 1);
        }
    }

    #[test]
    fn dit_has_adaln_and_vit_has_head() {
        let dit = zoo::tiny_dit();
        assert!(dit.params().iter().any(|p| p.fqn.contains("adaln")));
        let vit = zoo::vit_7b();
        assert!(vit.params().iter().any(|p| p.fqn == "head.weight"));
    }
}
