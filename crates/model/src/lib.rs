//! # bcp-model — training-framework substrate
//!
//! The paper checkpoints real training frameworks (Megatron-LM, FSDP, DDP,
//! veScale). None exists in Rust, so — per the DESIGN.md substitution table
//! — this crate reproduces exactly the part the checkpointing system
//! touches: *which tensors exist, how each framework shards them, and how
//! their values evolve over training steps*.
//!
//! * [`arch`] — transformer architectures (GPT / DiT / ViT shaped) as
//!   parameter inventories: FQNs, global shapes, dtypes, TP-sharding roles,
//!   and pipeline-stage hints.
//! * [`zoo`] — the paper's evaluation models (vDiT 4B, tGPT 13B/30B/70B,
//!   ViT 7B, Text 405B — Table 3 / Table 8) plus tiny test-scale variants.
//! * [`states`] — builds each rank's sharded model/optimizer state dict for
//!   a (framework, parallelism) pair, materialized or meta (shape-only).
//!   This is where Megatron TP/PP boxes, FSDP flat-parameter ranges (the
//!   irregular-tensor source), and Megatron distributed-optimizer
//!   flattened-TP-shard ranges are produced.
//! * [`trainer`] — a deterministic trainer: pseudo-gradients are a pure
//!   function of (tensor, global element index, step), so parameter
//!   evolution is **bitwise independent of parallelism** — the property
//!   that lets tests verify load-time resharding bitwise (paper §6.3).
//! * [`extra`] — the CPU-side extra state (RNG, step, LR schedule) packed
//!   into "one compact byte object" as the paper describes.
//! * [`mlp`] — a small genuinely-trained MLP (manual backprop, data-parallel
//!   gradient all-reduce) used by the quickstart examples, so at least one
//!   workload is real learning rather than pseudo-gradients.

pub mod arch;
pub mod extra;
pub mod mlp;
pub mod states;
pub mod trainer;
pub mod zoo;

pub use arch::{ArchKind, ParamDef, StageHint, TpRole, TransformerConfig};
pub use extra::ExtraState;
pub use states::{Framework, StateDict, StateEntry, TrainState};
pub use trainer::TrainerConfig;
