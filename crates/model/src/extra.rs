//! CPU-side "extra states": RNG, step counter, LR schedule.
//!
//! "For other extra states such as the RNG state, we pack and serialize them
//! into one compact byte object before dumping them into storage" (§3.2).

use serde::{Deserialize, Serialize};

/// The non-tensor training state every worker carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtraState {
    /// Global training step.
    pub step: u64,
    /// RNG state: seed plus how many values have been drawn. Fixing this is
    /// what makes data-sampling trajectories bitwise reproducible (Fig. 17).
    pub rng_seed: u64,
    /// Values drawn from the RNG so far.
    pub rng_counter: u64,
    /// Current learning rate from the scheduler.
    pub lr: f32,
    /// Warmup steps of the LR schedule.
    pub warmup_steps: u64,
    /// Total decay steps of the LR schedule.
    pub total_steps: u64,
}

impl ExtraState {
    /// A fresh state at step 0.
    pub fn new(rng_seed: u64) -> ExtraState {
        ExtraState {
            step: 0,
            rng_seed,
            rng_counter: 0,
            lr: 0.0,
            warmup_steps: 100,
            total_steps: 10_000,
        }
    }

    /// LR under a linear-warmup + cosine-decay schedule at `step`.
    pub fn scheduled_lr(&self, base_lr: f32, step: u64) -> f32 {
        if step < self.warmup_steps {
            return base_lr * (step as f32 + 1.0) / self.warmup_steps as f32;
        }
        let t = (step - self.warmup_steps) as f32
            / (self.total_steps.saturating_sub(self.warmup_steps)).max(1) as f32;
        let t = t.min(1.0);
        base_lr * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
    }

    /// Advance to the next step, updating the scheduled LR.
    pub fn advance(&mut self, base_lr: f32) {
        self.step += 1;
        self.lr = self.scheduled_lr(base_lr, self.step);
    }

    /// Draw the next RNG value (SplitMix64 counter mode), advancing the
    /// counter. Checkpointing the counter resumes the stream exactly.
    pub fn next_random(&mut self) -> u64 {
        let v = bcp_tensor::fill::splitmix64(
            self.rng_seed ^ self.rng_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.rng_counter += 1;
        v
    }

    /// Pack into one compact byte object (the paper's storage form).
    pub fn pack(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("plain struct serializes")
    }

    /// Unpack from the byte object.
    pub fn unpack(data: &[u8]) -> Option<ExtraState> {
        serde_json::from_slice(data).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let mut s = ExtraState::new(42);
        s.advance(1e-3);
        s.next_random();
        let packed = s.pack();
        let back = ExtraState::unpack(&packed).unwrap();
        assert_eq!(back, s);
        assert!(ExtraState::unpack(b"garbage").is_none());
    }

    #[test]
    fn rng_stream_resumes_from_counter() {
        let mut a = ExtraState::new(7);
        let first: Vec<u64> = (0..5).map(|_| a.next_random()).collect();
        // Resume a copy from the checkpointed counter.
        let mut b = ExtraState { rng_counter: 2, ..ExtraState::new(7) };
        let resumed: Vec<u64> = (0..3).map(|_| b.next_random()).collect();
        assert_eq!(&first[2..], &resumed[..]);
    }

    #[test]
    fn lr_schedule_warms_up_then_decays() {
        let s = ExtraState::new(0);
        let base = 1e-3;
        assert!(s.scheduled_lr(base, 0) < s.scheduled_lr(base, 99));
        assert!((s.scheduled_lr(base, 99) - base).abs() < 2e-5);
        assert!(s.scheduled_lr(base, 5000) < base);
        assert!(s.scheduled_lr(base, 20_000) <= s.scheduled_lr(base, 9_000));
    }
}
