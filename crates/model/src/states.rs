//! Per-rank sharded training state, per framework.
//!
//! Given (architecture, framework, parallelism, rank), build the state dict
//! the training worker would hand to `bytecheckpoint.save`: every tensor it
//! holds, each annotated with its global shape and [`ShardSpec`]. This is
//! the Rust equivalent of extracting "Megatron ShardedTensor or FSDP
//! DTensor" sharding specifications.

use crate::arch::{TpRole, TransformerConfig};
use bcp_tensor::fill::{encode_values, fqn_seed, value_at};
use bcp_tensor::{DType, Tensor};
use bcp_topology::{Parallelism, ShardSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The training frameworks the paper supports (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// Megatron-LM 3D parallelism. `distributed_optimizer` enables the
    /// ZeRO-1/2-style flattened-and-DP-sharded optimizer state that produces
    /// irregular tensors.
    Megatron {
        /// Use the distributed optimizer (flatten TP shard, split over DP).
        distributed_optimizer: bool,
    },
    /// PyTorch FSDP. `zero3` shards parameters too; otherwise ZeRO-2
    /// (parameters replicated, optimizer flat-sharded). Both flat-shard the
    /// *concatenation* of all tensors, so per-tensor ranges are irregular.
    Fsdp {
        /// ZeRO-3 (parameter sharding) vs ZeRO-2.
        zero3: bool,
    },
    /// PyTorch DDP: everything replicated.
    Ddp,
    /// veScale DTensor on a (dp, tp) mesh: grid sharding for model and
    /// optimizer states.
    VeScale,
}

impl Framework {
    /// Short name used in metadata and file paths.
    pub fn name(&self) -> &'static str {
        match self {
            Framework::Megatron { .. } => "megatron",
            Framework::Fsdp { .. } => "fsdp",
            Framework::Ddp => "ddp",
            Framework::VeScale => "vescale",
        }
    }
}

/// One tensor in a rank's state dict.
#[derive(Debug, Clone)]
pub struct StateEntry {
    /// Fully qualified name of the *logical* tensor.
    pub fqn: String,
    /// Global (unsharded) shape.
    pub global_shape: Vec<usize>,
    /// Storage dtype.
    pub dtype: DType,
    /// How this rank's local shard maps into the global tensor.
    pub spec: ShardSpec,
    /// The local shard (materialized or meta). For grid specs its shape is
    /// the box lengths; for flat specs it is 1-D.
    pub tensor: Tensor,
}

/// An ordered name → entry map (order matters for flat-parameter layouts).
#[derive(Debug, Clone, Default)]
pub struct StateDict {
    /// Entries keyed by FQN.
    pub entries: BTreeMap<String, StateEntry>,
}

impl StateDict {
    /// Number of tensors held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dict is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total local bytes held by this rank.
    pub fn local_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.tensor.nbytes() as u64).sum()
    }

    /// Insert an entry keyed by its FQN.
    pub fn insert(&mut self, entry: StateEntry) {
        self.entries.insert(entry.fqn.clone(), entry);
    }

    /// Look up by FQN.
    pub fn get(&self, fqn: &str) -> Option<&StateEntry> {
        self.entries.get(fqn)
    }
}

/// A rank's full GPU-side training state.
#[derive(Debug, Clone, Default)]
pub struct TrainState {
    /// Model weights.
    pub model: StateDict,
    /// Optimizer state (fp32 master weights and Adam moments).
    pub optimizer: StateDict,
}

/// The three optimizer state kinds kept per parameter (Adam + master copy).
pub const OPTIM_KINDS: [&str; 3] = ["master", "exp_avg", "exp_avg_sq"];

/// FQN of an optimizer state tensor for a parameter.
pub fn optim_fqn(kind: &str, param_fqn: &str) -> String {
    format!("optim.{kind}.{param_fqn}")
}

/// Initial value of element `g` of tensor `fqn` (step 0): master weights
/// mirror the parameter init; Adam moments start at zero, exactly like a
/// fresh `torch.optim.Adam`.
pub fn initial_value(fqn: &str, g: u64) -> f32 {
    if fqn.starts_with("optim.exp_avg") {
        0.0
    } else if let Some(rest) = fqn.strip_prefix("optim.master.") {
        value_at(fqn_seed(rest), g)
    } else {
        value_at(fqn_seed(fqn), g)
    }
}

/// Materialize the local shard for `spec` of the logical tensor `fqn` at
/// step 0. Values are addressed by *global* element index, so any two ranks
/// (under any parallelism) agree bitwise on shared elements.
pub fn materialize_shard(
    fqn: &str,
    dtype: DType,
    global_shape: &[usize],
    spec: &ShardSpec,
) -> Tensor {
    let n = spec.local_numel(global_shape).expect("spec valid for shape");
    let mut values = vec![0f32; n];
    spec.for_each_global_index(global_shape, |l, g| {
        values[l] = initial_value(fqn, g as u64);
    })
    .expect("spec valid for shape");
    let shape = local_shape(global_shape, spec);
    encode_values(dtype, shape, &values)
}

/// Local shard shape for a spec: box lengths for grid specs, 1-D for flat.
pub fn local_shape(global_shape: &[usize], spec: &ShardSpec) -> Vec<usize> {
    match spec {
        ShardSpec::Flat { length, .. } | ShardSpec::FlatOfBox { length, .. } => vec![*length],
        _ => spec.grid_box(global_shape).expect("spec valid for shape").1,
    }
}

fn make_entry(
    fqn: String,
    dtype: DType,
    global_shape: Vec<usize>,
    spec: ShardSpec,
    materialize: bool,
) -> StateEntry {
    let tensor = if materialize {
        materialize_shard(&fqn, dtype, &global_shape, &spec)
    } else {
        Tensor::meta(dtype, local_shape(&global_shape, &spec))
    };
    StateEntry { fqn, global_shape, dtype, spec, tensor }
}

/// TP grid spec for a parameter role, or `Replicated`.
fn tp_spec(role: TpRole, tp: usize, tp_idx: usize) -> ShardSpec {
    if tp == 1 {
        return ShardSpec::Replicated;
    }
    match role {
        TpRole::Column | TpRole::Vocab => ShardSpec::dim(0, tp, tp_idx),
        // Expert parallelism maps onto the model-parallel axis in this
        // substrate: experts (dim 0) split across the group.
        TpRole::Expert => ShardSpec::dim(0, tp, tp_idx),
        TpRole::Row => ShardSpec::dim(1, tp, tp_idx),
        TpRole::Replicated => ShardSpec::Replicated,
    }
}

/// Build the state dict a rank would hold for (arch, framework, parallelism).
///
/// `materialize = false` produces meta tensors (paper-scale planning);
/// `true` produces real deterministic data (tests, examples).
pub fn build_train_state(
    arch: &TransformerConfig,
    fw: Framework,
    par: Parallelism,
    rank: usize,
    materialize: bool,
) -> TrainState {
    match fw {
        Framework::Megatron { distributed_optimizer } => {
            build_megatron(arch, par, rank, distributed_optimizer, materialize)
        }
        Framework::Fsdp { zero3 } => build_fsdp(arch, par, rank, zero3, materialize),
        Framework::Ddp => build_ddp(arch, materialize),
        Framework::VeScale => build_vescale(arch, par, rank, materialize),
    }
}

fn build_megatron(
    arch: &TransformerConfig,
    par: Parallelism,
    rank: usize,
    distributed_optimizer: bool,
    materialize: bool,
) -> TrainState {
    let c = par.coords(rank).expect("rank in world");
    let mut model = StateDict::default();
    let mut optimizer = StateDict::default();
    for p in arch.params() {
        if arch.stage_of(&p, par.pp) != c.pp {
            continue;
        }
        let spec = tp_spec(p.tp, par.tp, c.tp);
        model.insert(make_entry(
            p.fqn.clone(),
            p.dtype,
            p.shape.clone(),
            spec.clone(),
            materialize,
        ));
        // Optimizer states: fp32, sharded like the param across TP, and —
        // with the distributed optimizer — the TP shard is flattened and
        // split across the DP group (irregular tensors, paper Fig. 7).
        let (box_off, box_len) = spec.grid_box(&p.shape).expect("grid spec");
        for kind in OPTIM_KINDS {
            let ofqn = optim_fqn(kind, &p.fqn);
            let ospec = if distributed_optimizer && par.dp > 1 {
                let box_numel: usize = box_len.iter().product();
                let (off, len) = bcp_tensor::layout::even_split(box_numel, par.dp, c.dp);
                ShardSpec::FlatOfBox {
                    box_offsets: box_off.clone(),
                    box_lengths: box_len.clone(),
                    offset: off,
                    length: len,
                }
            } else {
                spec.clone()
            };
            optimizer.insert(make_entry(ofqn, DType::F32, p.shape.clone(), ospec, materialize));
        }
    }
    TrainState { model, optimizer }
}

fn build_fsdp(
    arch: &TransformerConfig,
    par: Parallelism,
    rank: usize,
    zero3: bool,
    materialize: bool,
) -> TrainState {
    assert_eq!(par.tp, 1, "FSDP uses pure data parallelism");
    assert_eq!(par.pp, 1, "FSDP uses pure data parallelism");
    let dp = par.dp;
    let c = par.coords(rank).expect("rank in world");
    let params = arch.params();
    // The flat parameter: all tensors concatenated in definition order, then
    // even-split across DP ranks. Each tensor intersecting this rank's range
    // yields a per-tensor Flat spec — generally irregular.
    let total: usize = params.iter().map(|p| p.numel()).sum();
    let (my_start, my_len) = bcp_tensor::layout::even_split(total, dp, c.dp);
    let my_end = my_start + my_len;

    let mut model = StateDict::default();
    let mut optimizer = StateDict::default();
    let mut cursor = 0usize;
    for p in &params {
        let t_start = cursor;
        let t_end = cursor + p.numel();
        cursor = t_end;
        // Model weights.
        if zero3 {
            let lo = my_start.max(t_start);
            let hi = my_end.min(t_end);
            if lo < hi {
                let spec = ShardSpec::Flat { offset: lo - t_start, length: hi - lo };
                model.insert(make_entry(
                    p.fqn.clone(),
                    p.dtype,
                    p.shape.clone(),
                    spec,
                    materialize,
                ));
            }
        } else {
            // ZeRO-2: every rank keeps the full parameters.
            model.insert(make_entry(
                p.fqn.clone(),
                p.dtype,
                p.shape.clone(),
                ShardSpec::Replicated,
                materialize,
            ));
        }
        // Optimizer states are always flat-sharded (both ZeRO-2 and ZeRO-3).
        let lo = my_start.max(t_start);
        let hi = my_end.min(t_end);
        if lo < hi {
            let spec = ShardSpec::Flat { offset: lo - t_start, length: hi - lo };
            for kind in OPTIM_KINDS {
                optimizer.insert(make_entry(
                    optim_fqn(kind, &p.fqn),
                    DType::F32,
                    p.shape.clone(),
                    spec.clone(),
                    materialize,
                ));
            }
        }
    }
    TrainState { model, optimizer }
}

fn build_ddp(arch: &TransformerConfig, materialize: bool) -> TrainState {
    let mut model = StateDict::default();
    let mut optimizer = StateDict::default();
    for p in arch.params() {
        model.insert(make_entry(
            p.fqn.clone(),
            p.dtype,
            p.shape.clone(),
            ShardSpec::Replicated,
            materialize,
        ));
        for kind in OPTIM_KINDS {
            optimizer.insert(make_entry(
                optim_fqn(kind, &p.fqn),
                DType::F32,
                p.shape.clone(),
                ShardSpec::Replicated,
                materialize,
            ));
        }
    }
    TrainState { model, optimizer }
}

fn build_vescale(
    arch: &TransformerConfig,
    par: Parallelism,
    rank: usize,
    materialize: bool,
) -> TrainState {
    // veScale: DTensor placements on a (dp, tp) mesh; PP unused here.
    assert_eq!(par.pp, 1, "veScale substrate models a (dp, tp) mesh");
    let c = par.coords(rank).expect("rank in world");
    let mut model = StateDict::default();
    let mut optimizer = StateDict::default();
    for p in arch.params() {
        let spec = tp_spec(p.tp, par.tp, c.tp);
        model.insert(make_entry(
            p.fqn.clone(),
            p.dtype,
            p.shape.clone(),
            spec.clone(),
            materialize,
        ));
        for kind in OPTIM_KINDS {
            optimizer.insert(make_entry(
                optim_fqn(kind, &p.fqn),
                DType::F32,
                p.shape.clone(),
                spec.clone(),
                materialize,
            ));
        }
    }
    TrainState { model, optimizer }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn megatron_tp_shards_partition_each_tensor() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::new(2, 1, 1).unwrap();
        let s0 = build_train_state(
            &arch,
            Framework::Megatron { distributed_optimizer: false },
            par,
            0,
            true,
        );
        let s1 = build_train_state(
            &arch,
            Framework::Megatron { distributed_optimizer: false },
            par,
            1,
            true,
        );
        let qkv0 = s0.model.get("layers.0.attn.qkv.weight").unwrap();
        let qkv1 = s1.model.get("layers.0.attn.qkv.weight").unwrap();
        let h = arch.hidden;
        assert_eq!(qkv0.tensor.shape(), &[3 * h / 2, h]);
        let (o0, _) = qkv0.spec.grid_box(&qkv0.global_shape).unwrap();
        let (o1, _) = qkv1.spec.grid_box(&qkv1.global_shape).unwrap();
        assert_eq!(o0, vec![0, 0]);
        assert_eq!(o1, vec![3 * h / 2, 0]);
        // LayerNorm replicated: identical bytes on both ranks.
        let ln0 = s0.model.get("layers.0.ln1.weight").unwrap();
        let ln1 = s1.model.get("layers.0.ln1.weight").unwrap();
        assert!(ln0.tensor.bitwise_eq(&ln1.tensor));
    }

    #[test]
    fn megatron_pp_stages_partition_layers() {
        let arch = zoo::tiny_gpt(); // 4 layers
        let par = Parallelism::new(1, 1, 2).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: false };
        let s0 = build_train_state(&arch, fw, par, 0, false);
        let s1 = build_train_state(&arch, fw, par, 1, false);
        assert!(s0.model.get("layers.0.ln1.weight").is_some());
        assert!(s0.model.get("layers.3.ln1.weight").is_none());
        assert!(s1.model.get("layers.3.ln1.weight").is_some());
        assert!(s1.model.get("layers.0.ln1.weight").is_none());
        // Embedding on first stage, head on last.
        assert!(s0.model.get("embedding.word.weight").is_some());
        assert!(s1.model.get("lm_head.weight").is_some());
        assert!(s1.model.get("embedding.word.weight").is_none());
    }

    #[test]
    fn megatron_distributed_optimizer_produces_irregular_flatofbox() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::new(2, 2, 1).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let s = build_train_state(&arch, fw, par, 0, true);
        let e = s.optimizer.get(&optim_fqn("master", "layers.0.attn.qkv.weight")).unwrap();
        match &e.spec {
            ShardSpec::FlatOfBox { box_lengths, length, .. } => {
                let h = arch.hidden;
                assert_eq!(box_lengths, &vec![3 * h / 2, h]);
                assert_eq!(*length, (3 * h / 2) * h / 2);
            }
            other => panic!("expected FlatOfBox, got {other:?}"),
        }
        // The two DP shards of the flattened box cover it exactly.
        let s_dp1 = build_train_state(&arch, fw, par, 2, true); // dp=1, tp=0
        let e1 = s_dp1.optimizer.get(&optim_fqn("master", "layers.0.attn.qkv.weight")).unwrap();
        let (n0, n1) = (e.tensor.numel(), e1.tensor.numel());
        assert_eq!(n0 + n1, (3 * arch.hidden / 2) * arch.hidden);
    }

    #[test]
    fn fsdp_zero3_flat_shards_cover_everything_once() {
        let arch = zoo::tiny_gpt();
        let dp = 4;
        let par = Parallelism::data_parallel(dp).unwrap();
        let fw = Framework::Fsdp { zero3: true };
        // Collect, per fqn, all (offset, len) ranges across ranks.
        let mut coverage: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        let mut totals: BTreeMap<String, usize> = BTreeMap::new();
        for r in 0..dp {
            let s = build_train_state(&arch, fw, par, r, false);
            for e in s.model.entries.values() {
                let (off, len) = e.spec.flat_range().unwrap();
                coverage.entry(e.fqn.clone()).or_default().push((off, len));
                totals.insert(e.fqn.clone(), e.global_shape.iter().product());
            }
        }
        // Every tensor fully covered, no overlaps.
        for (fqn, mut ranges) in coverage {
            ranges.sort();
            let mut cursor = 0;
            for (off, len) in ranges {
                assert_eq!(off, cursor, "{fqn}: gap or overlap at {off}");
                cursor = off + len;
            }
            assert_eq!(cursor, totals[&fqn], "{fqn}: not fully covered");
        }
    }

    #[test]
    fn fsdp_produces_irregular_shards() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(3).unwrap();
        let fw = Framework::Fsdp { zero3: true };
        let mut any_irregular = false;
        for r in 0..3 {
            let s = build_train_state(&arch, fw, par, r, false);
            for e in s.model.entries.values() {
                if e.spec.is_irregular(&e.global_shape) {
                    any_irregular = true;
                }
            }
        }
        assert!(any_irregular, "flat-parameter sharding must cut across row boundaries");
    }

    #[test]
    fn fsdp_zero2_replicates_params_but_shards_optimizer() {
        let arch = zoo::tiny_dit();
        let par = Parallelism::data_parallel(2).unwrap();
        let s = build_train_state(&arch, Framework::Fsdp { zero3: false }, par, 1, false);
        for e in s.model.entries.values() {
            assert_eq!(e.spec, ShardSpec::Replicated);
        }
        assert!(s.optimizer.entries.values().all(|e| matches!(e.spec, ShardSpec::Flat { .. })));
    }

    #[test]
    fn shared_elements_agree_bitwise_across_parallelisms() {
        // The core substitution property: the same logical tensor
        // materialized under different shardings agrees on every element.
        let arch = zoo::tiny_gpt();
        let full = build_train_state(
            &arch,
            Framework::Ddp,
            Parallelism::data_parallel(1).unwrap(),
            0,
            true,
        );
        let fw = Framework::Megatron { distributed_optimizer: false };
        let par = Parallelism::new(2, 1, 2).unwrap();
        for r in 0..par.world_size() {
            let s = build_train_state(&arch, fw, par, r, true);
            for e in s.model.entries.values() {
                let reference = full.model.get(&e.fqn).unwrap();
                let (off, len) = e.spec.grid_box(&e.global_shape).unwrap();
                let want = reference.tensor.extract_box(&off, &len).unwrap();
                assert!(
                    e.tensor.bitwise_eq(&want),
                    "rank {r} tensor {} shard differs from reference",
                    e.fqn
                );
            }
        }
    }

    #[test]
    fn meta_state_has_no_data_but_right_sizes() {
        let arch = zoo::tgpt_13b();
        let par = Parallelism::new(2, 8, 2).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let s = build_train_state(&arch, fw, par, 0, false);
        assert!(s.model.entries.values().all(|e| e.tensor.is_meta()));
        // Model bytes on one rank ≈ params / (tp * pp) * dtype size; allow
        // slack for replicated tensors.
        let expected = arch.weight_bytes() / (par.tp as u64 * par.pp as u64);
        let got = s.model.local_bytes();
        assert!(
            got > expected / 2 && got < expected * 2,
            "rank model bytes {got} vs expected ~{expected}"
        );
    }

    #[test]
    fn optimizer_moments_start_at_zero_and_master_mirrors_param() {
        let arch = zoo::tiny_gpt();
        let s = build_train_state(
            &arch,
            Framework::Ddp,
            Parallelism::data_parallel(1).unwrap(),
            0,
            true,
        );
        let p = s.model.get("final_ln.weight").unwrap();
        let m = s.optimizer.get(&optim_fqn("master", "final_ln.weight")).unwrap();
        let ea = s.optimizer.get(&optim_fqn("exp_avg", "final_ln.weight")).unwrap();
        assert_eq!(p.tensor.to_f32_vec().unwrap(), m.tensor.to_f32_vec().unwrap());
        assert!(ea.tensor.to_f32_vec().unwrap().iter().all(|&v| v == 0.0));
    }
}
