//! A deterministic trainer whose parameter evolution is bitwise independent
//! of parallelism.
//!
//! Pseudo-gradients are a pure function of `(tensor fqn, global element
//! index, step)`, generated *before* sharding, exactly as a real
//! data-parallel training step produces one gradient per logical element.
//! Each rank applies the update to the elements it holds, addressing them by
//! global index. Consequences:
//!
//! * Two jobs with different parallelism configurations evolve **bitwise
//!   identical** logical tensors — so a checkpoint saved under one
//!   parallelism and resharded into another is verifiable element-exact,
//!   which is the strictest version of the paper's §6.3 correctness check.
//! * The training loss is a pure function of the step (a smooth power-law
//!   decay plus deterministic noise), so loss curves across save/resume
//!   boundaries must align exactly (paper Figs. 13/14/16).
//!
//! The update rule is deliberately history-free per tensor (each stored
//! tensor evolves from its own current value and the step's pseudo-gradient)
//! so that updates are `O(1)` per element and never need state another rank
//! holds. Semantically it is SGD on the weights with independently-evolving
//! Adam-moment bookkeeping — the checkpoint system only cares that the bytes
//! are realistic, distinct per step, and reproducible.

use crate::states::{StateDict, TrainState};
use bcp_tensor::fill::{encode_values, fqn_seed, splitmix64, value_at};
use serde::{Deserialize, Serialize};

/// Trainer hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Learning rate.
    pub lr: f32,
    /// Adam beta1 (first-moment decay).
    pub beta1: f32,
    /// Adam beta2 (second-moment decay).
    pub beta2: f32,
    /// Seed mixed into every pseudo-gradient.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> TrainerConfig {
        TrainerConfig { lr: 1e-2, beta1: 0.9, beta2: 0.99, seed: 0xB17E_C4EC }
    }
}

impl TrainerConfig {
    /// Pseudo-gradient for element `g` of the logical tensor that parameter
    /// `param_fqn` refers to, at `step`.
    pub fn grad(&self, param_fqn: &str, g: u64, step: u64) -> f32 {
        let seed = fqn_seed(param_fqn) ^ splitmix64(self.seed ^ step.wrapping_mul(0x9E37_79B9));
        value_at(seed, g)
    }

    /// Deterministic training loss at `step`: smooth power-law decay plus
    /// bounded reproducible noise — shaped like the paper's normalized loss
    /// curves.
    pub fn loss(&self, step: u64) -> f64 {
        let base = 10.0 * (1.0 + step as f64).powf(-0.3);
        let noise = value_at(self.seed ^ LOSS_NOISE_SEED, step) as f64;
        base * (1.0 + 0.02 * noise)
    }

    /// Apply one training step (producing state at `step + 1`) to every
    /// tensor in the state. Works on any sharding: elements are addressed by
    /// global index via the entry's [`bcp_topology::ShardSpec`].
    pub fn step(&self, state: &mut TrainState, step: u64) {
        self.step_dict(&mut state.model, step, Kind::Param);
        self.step_dict(&mut state.optimizer, step, Kind::Optim);
    }

    fn step_dict(&self, dict: &mut StateDict, step: u64, kind: Kind) {
        for entry in dict.entries.values_mut() {
            if entry.tensor.is_meta() {
                continue;
            }
            // The gradient stream belongs to the *parameter*; optimizer
            // tensors reference their parameter's stream.
            let param_fqn = match kind {
                Kind::Param => entry.fqn.clone(),
                Kind::Optim => entry
                    .fqn
                    .splitn(3, '.')
                    .nth(2)
                    .expect("optimizer fqn is optim.<kind>.<param>")
                    .to_string(),
            };
            let update: UpdateRule = match kind {
                Kind::Param => UpdateRule::Sgd,
                Kind::Optim if entry.fqn.starts_with("optim.master.") => UpdateRule::Sgd,
                Kind::Optim if entry.fqn.starts_with("optim.exp_avg_sq.") => UpdateRule::Moment2,
                Kind::Optim => UpdateRule::Moment1,
            };
            let mut values = entry.tensor.to_f32_vec().expect("materialized");
            entry
                .spec
                .for_each_global_index(&entry.global_shape, |l, g| {
                    let grad = self.grad(&param_fqn, g as u64, step);
                    values[l] = match update {
                        UpdateRule::Sgd => values[l] - self.lr * grad,
                        UpdateRule::Moment1 => self.beta1 * values[l] + (1.0 - self.beta1) * grad,
                        UpdateRule::Moment2 => {
                            self.beta2 * values[l] + (1.0 - self.beta2) * grad * grad
                        }
                    };
                })
                .expect("spec valid");
            entry.tensor = encode_values(entry.dtype, entry.tensor.shape().to_vec(), &values);
        }
    }

    /// Run `n` steps starting from `from_step` (states move to
    /// `from_step + n`).
    pub fn run(&self, state: &mut TrainState, from_step: u64, n: u64) {
        for s in from_step..from_step + n {
            self.step(state, s);
        }
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Param,
    Optim,
}

#[derive(Clone, Copy)]
enum UpdateRule {
    Sgd,
    Moment1,
    Moment2,
}

/// Constant mixed into the loss-noise stream (distinct from any fqn seed).
const LOSS_NOISE_SEED: u64 = 0x10_55_C0_DE;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::{build_train_state, Framework};
    use crate::zoo;
    use bcp_topology::Parallelism;

    #[test]
    fn training_is_deterministic() {
        let arch = zoo::tiny_gpt();
        let cfg = TrainerConfig::default();
        let mk = || {
            build_train_state(
                &arch,
                Framework::Ddp,
                Parallelism::data_parallel(1).unwrap(),
                0,
                true,
            )
        };
        let mut a = mk();
        let mut b = mk();
        cfg.run(&mut a, 0, 5);
        cfg.run(&mut b, 0, 5);
        for (fa, fb) in a.model.entries.values().zip(b.model.entries.values()) {
            assert!(fa.tensor.bitwise_eq(&fb.tensor));
        }
    }

    #[test]
    fn evolution_is_parallelism_independent() {
        // Train the same model single-rank and TP=2/PP=2; every shard of the
        // parallel run must equal the corresponding box of the full run.
        let arch = zoo::tiny_gpt();
        let cfg = TrainerConfig::default();
        let mut full = build_train_state(
            &arch,
            Framework::Ddp,
            Parallelism::data_parallel(1).unwrap(),
            0,
            true,
        );
        cfg.run(&mut full, 0, 3);

        let par = Parallelism::new(2, 1, 2).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: false };
        for r in 0..par.world_size() {
            let mut s = build_train_state(&arch, fw, par, r, true);
            cfg.run(&mut s, 0, 3);
            for e in s.model.entries.values() {
                let reference = full.model.get(&e.fqn).unwrap();
                let (off, len) = e.spec.grid_box(&e.global_shape).unwrap();
                let want = reference.tensor.extract_box(&off, &len).unwrap();
                assert!(e.tensor.bitwise_eq(&want), "rank {r} {} diverged after training", e.fqn);
            }
        }
    }

    #[test]
    fn flat_shards_evolve_consistently_with_full_tensor() {
        // FSDP flat shards (irregular) must also track the logical tensor.
        let arch = zoo::tiny_gpt();
        let cfg = TrainerConfig::default();
        let mut full = build_train_state(
            &arch,
            Framework::Ddp,
            Parallelism::data_parallel(1).unwrap(),
            0,
            true,
        );
        cfg.run(&mut full, 0, 4);

        let par = Parallelism::data_parallel(3).unwrap();
        let fw = Framework::Fsdp { zero3: true };
        for r in 0..3 {
            let mut s = build_train_state(&arch, fw, par, r, true);
            cfg.run(&mut s, 0, 4);
            for e in s.model.entries.values() {
                let (off, len) = e.spec.flat_range().unwrap();
                let reference = full.model.get(&e.fqn).unwrap();
                let want = reference.tensor.flatten().slice_flat(off, len).unwrap();
                assert!(e.tensor.bitwise_eq(&want), "rank {r} {} flat shard diverged", e.fqn);
            }
        }
    }

    #[test]
    fn optimizer_moments_become_nonzero_and_distinct_per_step() {
        let arch = zoo::tiny_gpt();
        let cfg = TrainerConfig::default();
        let mut s = build_train_state(
            &arch,
            Framework::Ddp,
            Parallelism::data_parallel(1).unwrap(),
            0,
            true,
        );
        cfg.step(&mut s, 0);
        let ea = s.optimizer.get("optim.exp_avg.final_ln.weight").unwrap().tensor.clone();
        assert!(ea.to_f32_vec().unwrap().iter().any(|&v| v != 0.0));
        cfg.step(&mut s, 1);
        let ea2 = s.optimizer.get("optim.exp_avg.final_ln.weight").unwrap().tensor.clone();
        assert!(!ea.bitwise_eq(&ea2));
    }

    #[test]
    fn loss_is_reproducible_and_decays() {
        let cfg = TrainerConfig::default();
        assert_eq!(cfg.loss(7), cfg.loss(7));
        let early: f64 = (0..10).map(|s| cfg.loss(s)).sum();
        let late: f64 = (100..110).map(|s| cfg.loss(s)).sum();
        assert!(late < early);
    }

    #[test]
    fn gradient_streams_differ_across_tensors_and_steps() {
        let cfg = TrainerConfig::default();
        assert_ne!(cfg.grad("a", 0, 0), cfg.grad("b", 0, 0));
        assert_ne!(cfg.grad("a", 0, 0), cfg.grad("a", 0, 1));
        assert_ne!(cfg.grad("a", 0, 0), cfg.grad("a", 1, 0));
        assert_eq!(cfg.grad("a", 5, 3), cfg.grad("a", 5, 3));
    }
}
