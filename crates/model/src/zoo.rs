//! The paper's evaluation models (Table 3, Table 8, Tables 5–7) plus tiny
//! variants for tests. Hidden/heads/layers for vDiT-4B and tGPT-70B are the
//! paper's exact numbers; 13B/30B use the standard GPT-3 family configs the
//! paper's "we modify the tGPT 70B model" implies; vocab sizes are chosen so
//! total parameter counts land on the advertised scale.

use crate::arch::{ArchKind, TransformerConfig};
use bcp_tensor::DType;

/// vDiT 4B: "Hidden 1664, #Heads 16, #Layers 48" — video-generation DiT
/// fine-tuned with FSDP (ZeRO-2) on A100s.
pub fn vdit_4b() -> TransformerConfig {
    TransformerConfig {
        name: "vDiT-4B".into(),
        kind: ArchKind::DiT,
        hidden: 1664,
        heads: 16,
        layers: 48,
        vocab: 4096, // patch-projection input dim
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// tGPT 70B: "Hidden 8192, #Heads 64, #Layers 80" — text generation with
/// Megatron-LM on H800s.
pub fn tgpt_70b() -> TransformerConfig {
    TransformerConfig {
        name: "tGPT-70B".into(),
        kind: ArchKind::Gpt,
        hidden: 8192,
        heads: 64,
        layers: 80,
        vocab: 128_256,
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// tGPT 13B (GPT-3 13B geometry): used in the saving/loading ablations
/// (Tables 5–7).
pub fn tgpt_13b() -> TransformerConfig {
    TransformerConfig {
        name: "tGPT-13B".into(),
        kind: ArchKind::Gpt,
        hidden: 5120,
        heads: 40,
        layers: 40,
        vocab: 50_304,
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// tGPT 30B: intermediate ablation model (Tables 5–7).
pub fn tgpt_30b() -> TransformerConfig {
    TransformerConfig {
        name: "tGPT-30B".into(),
        kind: ArchKind::Gpt,
        hidden: 6656,
        heads: 52,
        layers: 56,
        vocab: 50_304,
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// Vision Transformer 7B: the Table 8 FSDP scalability workload
/// (1488 GPUs, ZeRO-2).
pub fn vit_7b() -> TransformerConfig {
    TransformerConfig {
        name: "ViT-7B".into(),
        kind: ArchKind::ViT,
        hidden: 4096,
        heads: 32,
        layers: 34,
        vocab: 3072, // 32x32x3 patches
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// Text Transformer 405B: the Table 8 Megatron scalability workload
/// (8960 GPUs, TP=8 DP=70 PP=16).
pub fn text_405b() -> TransformerConfig {
    TransformerConfig {
        name: "Text-405B".into(),
        kind: ArchKind::Gpt,
        hidden: 16384,
        heads: 128,
        layers: 126,
        vocab: 128_256,
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// GPT 175B: the motivating example in §2.3 ("saving checkpoints of a GPT
/// 175B model trained on 4096 GPUs to HDFS can take 200 seconds").
pub fn gpt_175b() -> TransformerConfig {
    TransformerConfig {
        name: "GPT-175B".into(),
        kind: ArchKind::Gpt,
        hidden: 12288,
        heads: 96,
        layers: 96,
        vocab: 50_304,
        ffn_mult: 4,
        dtype: DType::BF16,
        num_experts: 0,
    }
}

/// Tiny GPT for real-execution tests: 4 layers, hidden 16 — small enough
/// to materialize, shard, and verify bitwise in milliseconds.
pub fn tiny_gpt() -> TransformerConfig {
    TransformerConfig {
        name: "tiny-GPT".into(),
        kind: ArchKind::Gpt,
        hidden: 16,
        heads: 4,
        layers: 4,
        vocab: 64,
        ffn_mult: 4,
        dtype: DType::F32,
        num_experts: 0,
    }
}

/// Tiny GPT with 8 layers (pipeline-parallel resharding tests need layer
/// counts divisible by larger PP degrees).
pub fn tiny_gpt_8l() -> TransformerConfig {
    TransformerConfig { name: "tiny-GPT-8L".into(), layers: 8, ..tiny_gpt() }
}

/// Tiny DiT for FSDP-path tests.
pub fn tiny_dit() -> TransformerConfig {
    TransformerConfig {
        name: "tiny-DiT".into(),
        kind: ArchKind::DiT,
        hidden: 16,
        heads: 4,
        layers: 3,
        vocab: 48,
        ffn_mult: 4,
        dtype: DType::F32,
        num_experts: 0,
    }
}

/// Tiny model with bf16 weights, to exercise half-precision storage paths
/// end to end.
pub fn tiny_gpt_bf16() -> TransformerConfig {
    TransformerConfig { name: "tiny-GPT-bf16".into(), dtype: DType::BF16, ..tiny_gpt() }
}

/// Tiny mixture-of-experts model: 8 experts per layer, fp32 router —
/// exercises expert-parallel resharding (Appendix A's MoE scripts).
pub fn tiny_moe() -> TransformerConfig {
    TransformerConfig { name: "tiny-MoE".into(), num_experts: 8, ..tiny_gpt() }
}

/// A production-shaped MoE text model (16 experts) for simulator workloads.
pub fn tgpt_moe_16e() -> TransformerConfig {
    TransformerConfig { name: "tGPT-MoE-16E".into(), num_experts: 16, ..tgpt_13b() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(tiny_gpt().num_params() < vdit_4b().num_params());
        assert!(vdit_4b().num_params() < vit_7b().num_params());
        assert!(vit_7b().num_params() < tgpt_13b().num_params());
        assert!(tgpt_13b().num_params() < tgpt_30b().num_params());
        assert!(tgpt_30b().num_params() < tgpt_70b().num_params());
        assert!(tgpt_70b().num_params() < text_405b().num_params());
    }

    #[test]
    fn headline_models_near_advertised_size() {
        let close = |n: u64, b: f64| (n as f64) > b * 0.8 && (n as f64) < b * 1.25;
        assert!(close(vit_7b().num_params(), 7e9), "{}", vit_7b().num_params());
        assert!(close(tgpt_13b().num_params(), 13e9), "{}", tgpt_13b().num_params());
        assert!(close(tgpt_30b().num_params(), 30e9), "{}", tgpt_30b().num_params());
        assert!(close(text_405b().num_params(), 405e9), "{}", text_405b().num_params());
        assert!(close(gpt_175b().num_params(), 175e9), "{}", gpt_175b().num_params());
    }
}
