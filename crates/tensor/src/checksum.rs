//! CRC32 (IEEE 802.3 polynomial) for checkpoint file integrity.
//!
//! Storage files carry a per-frame CRC so that torn or corrupted writes are
//! detected at load time instead of silently corrupting training state
//! (paper Appendix B: integrity guarantee). Hand-rolled to stay within the
//! approved dependency set; table-driven, one byte at a time — checksumming
//! is far from the I/O bottleneck.

/// Reflected CRC32 polynomial (same as zlib / `crc32fast`).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Streaming CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Start a new checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish and return the checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello world, this is a checkpoint frame";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        data[512] = 0xAA;
        let base = crc32(&data);
        data[512] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
