//! Deterministic, *position-addressed* tensor data.
//!
//! Resharding correctness is verified bitwise (paper §6.3): a tensor saved
//! under one parallelism and loaded under another must reproduce the exact
//! bytes of every element. For that check to be strict, element values must
//! be a pure function of (tensor identity, element position, step) — never of
//! which rank happened to hold them. This module provides such generators.

use crate::dtype::{f32_to_bf16, f32_to_f16, DType};
use crate::tensor::Tensor;
use bytes::BytesMut;

/// SplitMix64: tiny, high-quality 64-bit mixer. Used instead of `rand`
/// because the value at element `i` must be computable directly from `i`
/// (counter mode), which sequential RNG APIs do not give us.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stable 64-bit hash of a string (FNV-1a), used to derive per-tensor seeds
/// from fully qualified names.
pub fn fqn_seed(fqn: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in fqn.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic pseudo-random value in `[-1, 1)` for element `index` of the
/// stream identified by `seed`.
#[inline]
pub fn value_at(seed: u64, index: u64) -> f32 {
    let bits = splitmix64(seed ^ splitmix64(index.wrapping_add(0x5bd1_e995)));
    // Take 24 bits of entropy into a uniform [0,1) float, then shift.
    let u = (bits >> 40) as f32 / (1u64 << 24) as f32;
    2.0 * u - 1.0
}

/// Materialize a tensor whose element `i` equals `value_at(seed, i)` encoded
/// in `dtype`. Positions are *global* flat indices, so shards of the same
/// logical tensor can be generated independently on any rank and still agree
/// bitwise — see [`deterministic_range`].
pub fn deterministic(dtype: DType, shape: Vec<usize>, seed: u64) -> Tensor {
    let n = crate::layout::numel(&shape);
    deterministic_region(dtype, shape, seed, 0, n)
}

/// Materialize only the flat element range `[start, start+len)` of the
/// logical stream `seed`, as a 1-D tensor. Exactly what a ZeRO shard holds.
pub fn deterministic_range(dtype: DType, seed: u64, start: usize, len: usize) -> Tensor {
    deterministic_region(dtype, vec![len], seed, start, len)
}

/// Encode a sequence of `f32` values into a tensor of the given dtype.
/// The dtype conversion is the same one [`deterministic`] applies, so
/// generators that compute values positionally stay bit-compatible.
pub fn encode_values(dtype: DType, shape: Vec<usize>, values: &[f32]) -> Tensor {
    let mut buf = BytesMut::with_capacity(values.len() * dtype.size());
    for &v in values {
        encode_one(dtype, v, &mut buf);
    }
    Tensor::from_bytes(dtype, shape, buf.freeze()).expect("sized buffer")
}

#[inline]
fn encode_one(dtype: DType, v: f32, buf: &mut BytesMut) {
    match dtype {
        DType::F64 => buf.extend_from_slice(&(v as f64).to_le_bytes()),
        DType::F32 => buf.extend_from_slice(&v.to_le_bytes()),
        DType::F16 => buf.extend_from_slice(&f32_to_f16(v).to_le_bytes()),
        DType::BF16 => buf.extend_from_slice(&f32_to_bf16(v).to_le_bytes()),
        DType::I64 => buf.extend_from_slice(&((v * 1000.0) as i64).to_le_bytes()),
        DType::I32 => buf.extend_from_slice(&((v * 1000.0) as i32).to_le_bytes()),
        DType::I16 => buf.extend_from_slice(&((v * 100.0) as i16).to_le_bytes()),
        DType::U8 => buf.extend_from_slice(&[(v.abs() * 255.0) as u8]),
        DType::Bool => buf.extend_from_slice(&[(v > 0.0) as u8]),
    }
}

fn deterministic_region(
    dtype: DType,
    shape: Vec<usize>,
    seed: u64,
    start: usize,
    len: usize,
) -> Tensor {
    let mut buf = BytesMut::with_capacity(len * dtype.size());
    for i in 0..len {
        encode_one(dtype, value_at(seed, (start + i) as u64), &mut buf);
    }
    Tensor::from_bytes(dtype, shape, buf.freeze()).expect("sized buffer")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_is_pure_and_bounded() {
        for i in 0..1000u64 {
            let a = value_at(42, i);
            let b = value_at(42, i);
            assert_eq!(a, b);
            assert!((-1.0..1.0).contains(&a));
        }
        assert_ne!(value_at(42, 0), value_at(43, 0));
    }

    #[test]
    fn range_generation_matches_full_generation() {
        let full = deterministic(DType::F32, vec![100], 7);
        let part = deterministic_range(DType::F32, 7, 30, 20);
        let sliced = full.slice_flat(30, 20).unwrap();
        assert!(part.bitwise_eq(&sliced));
    }

    #[test]
    fn range_generation_matches_for_halfs() {
        // bf16 rounding must also be position-stable.
        let full = deterministic(DType::BF16, vec![64], 11);
        let a = deterministic_range(DType::BF16, 11, 0, 32);
        let b = deterministic_range(DType::BF16, 11, 32, 32);
        let mut cat = bytes::BytesMut::new();
        cat.extend_from_slice(a.bytes().unwrap());
        cat.extend_from_slice(b.bytes().unwrap());
        assert_eq!(&cat.freeze()[..], &full.bytes().unwrap()[..]);
    }

    #[test]
    fn fqn_seed_is_stable_and_distinguishing() {
        assert_eq!(fqn_seed("layers.0.attn.qkv.weight"), fqn_seed("layers.0.attn.qkv.weight"));
        assert_ne!(fqn_seed("layers.0.attn.qkv.weight"), fqn_seed("layers.1.attn.qkv.weight"));
    }

    #[test]
    fn values_are_not_constant() {
        let t = deterministic(DType::F32, vec![256], 3);
        let v = t.to_f32_vec().unwrap();
        let distinct: std::collections::HashSet<u32> = v.iter().map(|x| x.to_bits()).collect();
        assert!(distinct.len() > 200, "expected high diversity, got {}", distinct.len());
    }
}
