//! Dense row-major tensors over [`bytes::Bytes`], plus meta (shape-only)
//! tensors used for paper-scale planning.

use crate::dtype::DType;
use crate::layout::{box_in_bounds, contiguous_strides, numel};
use crate::{Result, TensorError};
use bytes::{Bytes, BytesMut};

/// Backing storage of a [`Tensor`].
#[derive(Debug, Clone)]
pub enum Storage {
    /// Materialized little-endian element bytes. `Bytes` makes cloning and
    /// zero-copy slicing cheap, which the engine pipelines rely on.
    Materialized(Bytes),
    /// No storage: the tensor only carries shape/dtype. Mirrors PyTorch's
    /// meta device; used by planners at paper scale.
    Meta,
}

/// A dense, contiguous, row-major n-dimensional tensor.
///
/// This is intentionally minimal: the checkpoint system moves bytes, it does
/// not compute. The only "compute" operations provided are region
/// extraction/insertion ([`Tensor::extract_box`], [`Tensor::write_box`]) and
/// flat-range slicing ([`Tensor::slice_flat`]), which together implement
/// resharding, plus element accessors used by the training substrate.
#[derive(Debug, Clone)]
pub struct Tensor {
    dtype: DType,
    shape: Vec<usize>,
    storage: Storage,
}

impl Tensor {
    /// Create a materialized tensor from raw little-endian bytes.
    pub fn from_bytes(dtype: DType, shape: Vec<usize>, data: Bytes) -> Result<Tensor> {
        let expected = numel(&shape) * dtype.size();
        if data.len() != expected {
            return Err(TensorError::BufferSizeMismatch { expected, got: data.len() });
        }
        Ok(Tensor { dtype, shape, storage: Storage::Materialized(data) })
    }

    /// Create a zero-filled materialized tensor.
    pub fn zeros(dtype: DType, shape: Vec<usize>) -> Tensor {
        let nbytes = numel(&shape) * dtype.size();
        Tensor { dtype, shape, storage: Storage::Materialized(BytesMut::zeroed(nbytes).freeze()) }
    }

    /// Create a meta tensor: shape and dtype only, no storage.
    pub fn meta(dtype: DType, shape: Vec<usize>) -> Tensor {
        Tensor { dtype, shape, storage: Storage::Meta }
    }

    /// Create an `f32` tensor from a slice of values.
    pub fn from_f32(shape: Vec<usize>, values: &[f32]) -> Result<Tensor> {
        let expected = numel(&shape);
        if values.len() != expected {
            return Err(TensorError::BufferSizeMismatch {
                expected: expected * 4,
                got: values.len() * 4,
            });
        }
        let mut buf = BytesMut::with_capacity(values.len() * 4);
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        Ok(Tensor { dtype: DType::F32, shape, storage: Storage::Materialized(buf.freeze()) })
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Shape (row-major).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        numel(&self.shape)
    }

    /// Total storage size in bytes (also defined for meta tensors).
    pub fn nbytes(&self) -> usize {
        self.numel() * self.dtype.size()
    }

    /// Row-major element strides.
    pub fn strides(&self) -> Vec<usize> {
        contiguous_strides(&self.shape)
    }

    /// Whether this is a meta (storage-less) tensor.
    pub fn is_meta(&self) -> bool {
        matches!(self.storage, Storage::Meta)
    }

    /// Raw little-endian bytes. Errors on meta tensors.
    pub fn bytes(&self) -> Result<&Bytes> {
        match &self.storage {
            Storage::Materialized(b) => Ok(b),
            Storage::Meta => Err(TensorError::MetaTensor),
        }
    }

    /// Clone of the raw bytes (cheap: `Bytes` is reference-counted).
    pub fn bytes_cloned(&self) -> Result<Bytes> {
        self.bytes().cloned()
    }

    /// Reinterpret as a 1-D tensor over the same storage (zero-copy).
    pub fn flatten(&self) -> Tensor {
        Tensor { dtype: self.dtype, shape: vec![self.numel()], storage: self.storage.clone() }
    }

    /// Zero-copy slice of the flat element range `[start, start+len)`,
    /// returned as a 1-D tensor. This is the primitive behind ZeRO-style
    /// flat sharding.
    pub fn slice_flat(&self, start: usize, len: usize) -> Result<Tensor> {
        let n = self.numel();
        if start.checked_add(len).is_none_or(|end| end > n) {
            return Err(TensorError::FlatRangeOutOfBounds { numel: n, start, len });
        }
        let storage = match &self.storage {
            Storage::Meta => Storage::Meta,
            Storage::Materialized(b) => {
                let es = self.dtype.size();
                Storage::Materialized(b.slice(start * es..(start + len) * es))
            }
        };
        Ok(Tensor { dtype: self.dtype, shape: vec![len], storage })
    }

    /// Copy out the hyper-rectangular region `offsets/lengths` as a new
    /// contiguous tensor of shape `lengths`.
    ///
    /// This is the read-side primitive of resharding: a target shard reads
    /// the intersection box out of a saved shard.
    pub fn extract_box(&self, offsets: &[usize], lengths: &[usize]) -> Result<Tensor> {
        if !box_in_bounds(&self.shape, offsets, lengths) {
            return Err(TensorError::BoxOutOfBounds {
                shape: self.shape.clone(),
                offsets: offsets.to_vec(),
                lengths: lengths.to_vec(),
            });
        }
        if self.is_meta() {
            return Ok(Tensor::meta(self.dtype, lengths.to_vec()));
        }
        let es = self.dtype.size();
        let src = self.bytes()?;
        let mut dst = BytesMut::zeroed(numel(lengths) * es);
        copy_box(
            src,
            &self.shape,
            offsets,
            &mut dst,
            lengths,
            &vec![0; lengths.len()],
            lengths,
            es,
            Direction::SrcToDst,
        );
        Tensor::from_bytes(self.dtype, lengths.to_vec(), dst.freeze())
    }

    /// Write `src` (whose shape must equal `lengths`) into the region
    /// `offsets/lengths` of this tensor, returning the updated tensor.
    ///
    /// Tensors are immutable (`Bytes`); the write clones the storage into a
    /// mutable buffer first. This is the write-side primitive of resharding:
    /// a target shard is assembled by writing intersection boxes into it.
    pub fn write_box(&self, offsets: &[usize], src: &Tensor) -> Result<Tensor> {
        let lengths = src.shape().to_vec();
        if !box_in_bounds(&self.shape, offsets, &lengths) {
            return Err(TensorError::BoxOutOfBounds {
                shape: self.shape.clone(),
                offsets: offsets.to_vec(),
                lengths,
            });
        }
        if src.dtype != self.dtype {
            return Err(TensorError::DTypeMismatch { expected: self.dtype, got: src.dtype });
        }
        if self.is_meta() || src.is_meta() {
            return Err(TensorError::MetaTensor);
        }
        let es = self.dtype.size();
        let mut dst = BytesMut::from(&self.bytes()?[..]);
        copy_box(
            src.bytes()?,
            &lengths,
            &vec![0; lengths.len()],
            &mut dst,
            &self.shape,
            offsets,
            &lengths,
            es,
            Direction::DstToSrc,
        );
        Tensor::from_bytes(self.dtype, self.shape.clone(), dst.freeze())
    }

    /// Read element `flat_index` as `f32` (converting from the storage dtype).
    pub fn get_f32(&self, flat_index: usize) -> Result<f32> {
        use crate::dtype::{bf16_to_f32, f16_to_f32};
        let b = self.bytes()?;
        let es = self.dtype.size();
        if flat_index >= self.numel() {
            return Err(TensorError::FlatRangeOutOfBounds {
                numel: self.numel(),
                start: flat_index,
                len: 1,
            });
        }
        let s = &b[flat_index * es..(flat_index + 1) * es];
        Ok(match self.dtype {
            DType::F64 => f64::from_le_bytes(s.try_into().unwrap()) as f32,
            DType::F32 => f32::from_le_bytes(s.try_into().unwrap()),
            DType::F16 => f16_to_f32(u16::from_le_bytes(s.try_into().unwrap())),
            DType::BF16 => bf16_to_f32(u16::from_le_bytes(s.try_into().unwrap())),
            DType::I64 => i64::from_le_bytes(s.try_into().unwrap()) as f32,
            DType::I32 => i32::from_le_bytes(s.try_into().unwrap()) as f32,
            DType::I16 => i16::from_le_bytes(s.try_into().unwrap()) as f32,
            DType::U8 => s[0] as f32,
            DType::Bool => (s[0] != 0) as u8 as f32,
        })
    }

    /// All elements converted to `f32`. Intended for tests and the small
    /// training substrate, not for bulk data movement.
    pub fn to_f32_vec(&self) -> Result<Vec<f32>> {
        (0..self.numel()).map(|i| self.get_f32(i)).collect()
    }

    /// Bitwise equality of dtype, shape and storage bytes.
    pub fn bitwise_eq(&self, other: &Tensor) -> bool {
        self.dtype == other.dtype
            && self.shape == other.shape
            && match (&self.storage, &other.storage) {
                (Storage::Materialized(a), Storage::Materialized(b)) => a == b,
                (Storage::Meta, Storage::Meta) => true,
                _ => false,
            }
    }

    /// CRC32 of the storage bytes (0 for meta tensors).
    pub fn crc32(&self) -> u32 {
        match &self.storage {
            Storage::Materialized(b) => crate::checksum::crc32(b),
            Storage::Meta => 0,
        }
    }
}

enum Direction {
    /// Copy the box at `src_off` in src to the box at `dst_off` in dst.
    SrcToDst,
    /// Same, parameters swapped (used by `write_box` to reuse the walker).
    DstToSrc,
}

/// Walk the n-D box row by row, memcpy-ing the innermost contiguous runs.
///
/// `lengths` is the common box size; `src_shape`/`src_off` locate the box in
/// the source, `dst_shape`/`dst_off` in the destination.
#[allow(clippy::too_many_arguments)]
fn copy_box(
    src: &[u8],
    src_shape: &[usize],
    src_off: &[usize],
    dst: &mut [u8],
    dst_shape: &[usize],
    dst_off: &[usize],
    lengths: &[usize],
    elem_size: usize,
    dir: Direction,
) {
    let rank = lengths.len();
    if rank == 0 {
        // Scalars: single element copy.
        dst[..elem_size].copy_from_slice(&src[..elem_size]);
        return;
    }
    let src_strides = contiguous_strides(src_shape);
    let dst_strides = contiguous_strides(dst_shape);
    // Iterate over all outer coordinates (all dims except the last), copying
    // `lengths[rank-1]` contiguous elements at a time.
    let run = lengths[rank - 1] * elem_size;
    let outer: usize = lengths[..rank - 1].iter().product();
    let mut coord = vec![0usize; rank - 1];
    for _ in 0..outer.max(1) {
        let mut s = src_off[rank - 1] * src_strides[rank - 1];
        let mut d = dst_off[rank - 1] * dst_strides[rank - 1];
        for (i, &c) in coord.iter().enumerate() {
            s += (src_off[i] + c) * src_strides[i];
            d += (dst_off[i] + c) * dst_strides[i];
        }
        let (s, d) = (s * elem_size, d * elem_size);
        match dir {
            Direction::SrcToDst | Direction::DstToSrc => {
                dst[d..d + run].copy_from_slice(&src[s..s + run]);
            }
        }
        // Odometer increment over the outer dims.
        for i in (0..rank - 1).rev() {
            coord[i] += 1;
            if coord[i] < lengths[i] {
                break;
            }
            coord[i] = 0;
        }
        if outer == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iota(shape: Vec<usize>) -> Tensor {
        let n = numel(&shape);
        Tensor::from_f32(shape, &(0..n).map(|i| i as f32).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = iota(vec![2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.nbytes(), 24);
        assert_eq!(t.strides(), vec![3, 1]);
        assert_eq!(t.get_f32(4).unwrap(), 4.0);
        assert!(!t.is_meta());
    }

    #[test]
    fn from_bytes_validates_length() {
        let err = Tensor::from_bytes(DType::F32, vec![2, 2], Bytes::from_static(&[0u8; 10]));
        assert!(matches!(err, Err(TensorError::BufferSizeMismatch { expected: 16, got: 10 })));
    }

    #[test]
    fn meta_tensors_reject_data_access() {
        let m = Tensor::meta(DType::BF16, vec![1024, 1024]);
        assert!(m.is_meta());
        assert_eq!(m.nbytes(), 1024 * 1024 * 2);
        assert!(matches!(m.bytes(), Err(TensorError::MetaTensor)));
        // But shape-level ops work.
        let s = m.slice_flat(0, 10).unwrap();
        assert!(s.is_meta());
        assert_eq!(s.shape(), &[10]);
        let b = m.extract_box(&[0, 0], &[2, 2]).unwrap();
        assert!(b.is_meta());
    }

    #[test]
    fn slice_flat_is_zero_copy_and_bounds_checked() {
        let t = iota(vec![10]);
        let s = t.slice_flat(3, 4).unwrap();
        assert_eq!(s.to_f32_vec().unwrap(), vec![3.0, 4.0, 5.0, 6.0]);
        assert!(t.slice_flat(8, 4).is_err());
    }

    #[test]
    fn extract_box_2d() {
        // 3x4 iota; take middle 2x2.
        let t = iota(vec![3, 4]);
        let b = t.extract_box(&[1, 1], &[2, 2]).unwrap();
        assert_eq!(b.to_f32_vec().unwrap(), vec![5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn extract_box_full_is_identity() {
        let t = iota(vec![2, 3, 4]);
        let b = t.extract_box(&[0, 0, 0], &[2, 3, 4]).unwrap();
        assert!(b.bitwise_eq(&t));
    }

    #[test]
    fn write_box_round_trip() {
        let base = Tensor::zeros(DType::F32, vec![4, 4]);
        let patch = iota(vec![2, 3]);
        let out = base.write_box(&[1, 1], &patch).unwrap();
        let back = out.extract_box(&[1, 1], &[2, 3]).unwrap();
        assert!(back.bitwise_eq(&patch));
        // Untouched corner stays zero.
        assert_eq!(out.get_f32(0).unwrap(), 0.0);
    }

    #[test]
    fn write_box_dtype_and_bounds_errors() {
        let base = Tensor::zeros(DType::F32, vec![4, 4]);
        let bad_dtype = Tensor::zeros(DType::F16, vec![2, 2]);
        assert!(matches!(
            base.write_box(&[0, 0], &bad_dtype),
            Err(TensorError::DTypeMismatch { .. })
        ));
        let too_big = Tensor::zeros(DType::F32, vec![5, 1]);
        assert!(matches!(
            base.write_box(&[0, 0], &too_big),
            Err(TensorError::BoxOutOfBounds { .. })
        ));
    }

    #[test]
    fn scalar_tensors_work() {
        let t = Tensor::from_f32(vec![], &[42.0]).unwrap();
        assert_eq!(t.numel(), 1);
        let b = t.extract_box(&[], &[]).unwrap();
        assert_eq!(b.get_f32(0).unwrap(), 42.0);
    }

    #[test]
    fn half_precision_round_trips_through_get_f32() {
        use crate::dtype::f32_to_f16;
        let vals = [1.0f32, -0.5, 100.0];
        let mut bytes = BytesMut::new();
        for v in vals {
            bytes.extend_from_slice(&f32_to_f16(v).to_le_bytes());
        }
        let t = Tensor::from_bytes(DType::F16, vec![3], bytes.freeze()).unwrap();
        assert_eq!(t.to_f32_vec().unwrap(), vals.to_vec());
    }

    proptest! {
        /// extract_box then reassembling via write_box into a zero tensor of the
        /// same shape reproduces exactly the selected region.
        #[test]
        fn box_extract_write_round_trip(
            d0 in 1usize..6, d1 in 1usize..6, d2 in 1usize..6,
            seed in 0u64..1000,
        ) {
            let shape = vec![d0, d1, d2];
            let t = crate::fill::deterministic(DType::F32, shape.clone(), seed);
            // Random-ish sub-box derived from the seed.
            let off = vec![seed as usize % d0, (seed as usize / 3) % d1, (seed as usize / 7) % d2];
            let len = vec![d0 - off[0], d1 - off[1], d2 - off[2]];
            let b = t.extract_box(&off, &len).unwrap();
            let z = Tensor::zeros(DType::F32, shape);
            let w = z.write_box(&off, &b).unwrap();
            let back = w.extract_box(&off, &len).unwrap();
            prop_assert!(back.bitwise_eq(&b));
        }

        /// Splitting a tensor flat into k chunks and re-concatenating the bytes
        /// reproduces the original storage.
        #[test]
        fn flat_chunks_partition_storage(n in 1usize..500, parts in 1usize..8, seed in 0u64..100) {
            let t = crate::fill::deterministic(DType::F32, vec![n], seed);
            let mut cat = BytesMut::new();
            for p in 0..parts {
                let (off, len) = crate::layout::even_split(n, parts, p);
                let s = t.slice_flat(off, len).unwrap();
                cat.extend_from_slice(s.bytes().unwrap());
            }
            prop_assert_eq!(&cat.freeze()[..], &t.bytes().unwrap()[..]);
        }
    }
}
