//! Row-major layout arithmetic shared by tensors, shard metadata, and the
//! irregular-tensor decomposition algorithm in `bcp-core`.

/// Number of elements implied by a shape. A zero-dimensional (scalar) shape
/// has one element; any zero-length axis yields zero.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major (C-contiguous) strides, in *elements*, for a shape.
///
/// `strides[i]` is the flat-index distance between consecutive indices along
/// axis `i`. A scalar shape yields an empty stride vector.
pub fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0usize; shape.len()];
    let mut acc = 1usize;
    for i in (0..shape.len()).rev() {
        strides[i] = acc;
        acc = acc.saturating_mul(shape[i]);
    }
    strides
}

/// Flat (row-major) index of a multi-dimensional coordinate.
///
/// # Panics
/// Panics in debug builds if `index` and `shape` disagree in rank or the
/// coordinate is out of bounds.
pub fn ravel_index(index: &[usize], shape: &[usize]) -> usize {
    debug_assert_eq!(index.len(), shape.len());
    let mut flat = 0usize;
    for (i, (&ix, &dim)) in index.iter().zip(shape.iter()).enumerate() {
        debug_assert!(ix < dim, "index {ix} out of bounds for dim {i} of size {dim}");
        flat = flat * dim + ix;
    }
    flat
}

/// Inverse of [`ravel_index`]: multi-dimensional coordinate of a flat index.
pub fn unravel_index(mut flat: usize, shape: &[usize]) -> Vec<usize> {
    let mut index = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        let dim = shape[i];
        index[i] = flat % dim;
        flat /= dim;
    }
    debug_assert_eq!(flat, 0, "flat index out of bounds");
    index
}

/// Check that the box `offsets/lengths` lies fully inside `shape`.
pub fn box_in_bounds(shape: &[usize], offsets: &[usize], lengths: &[usize]) -> bool {
    offsets.len() == shape.len()
        && lengths.len() == shape.len()
        && offsets
            .iter()
            .zip(lengths)
            .zip(shape)
            .all(|((&o, &l), &d)| o.checked_add(l).is_some_and(|end| end <= d))
}

/// Intersect two n-D boxes given as (offsets, lengths).
///
/// Returns `None` when the boxes are disjoint or any intersection axis is
/// empty. Ranks must match.
pub fn intersect_boxes(
    a_off: &[usize],
    a_len: &[usize],
    b_off: &[usize],
    b_len: &[usize],
) -> Option<(Vec<usize>, Vec<usize>)> {
    if a_off.len() != b_off.len() {
        return None;
    }
    let rank = a_off.len();
    let mut off = Vec::with_capacity(rank);
    let mut len = Vec::with_capacity(rank);
    for d in 0..rank {
        let lo = a_off[d].max(b_off[d]);
        let hi = (a_off[d] + a_len[d]).min(b_off[d] + b_len[d]);
        if hi <= lo {
            return None;
        }
        off.push(lo);
        len.push(hi - lo);
    }
    Some((off, len))
}

/// Split `total` elements into `parts` contiguous chunks, PyTorch-`chunk`
/// style: the first `total % parts` chunks get one extra element.
///
/// Returns `(offset, length)` for `part_index`; length may be zero when
/// `parts > total`.
pub fn even_split(total: usize, parts: usize, part_index: usize) -> (usize, usize) {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(part_index < parts, "part index {part_index} out of {parts}");
    let base = total / parts;
    let extra = total % parts;
    if part_index < extra {
        let off = part_index * (base + 1);
        (off, base + 1)
    } else {
        let off = extra * (base + 1) + (part_index - extra) * base;
        (off, base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strides_of_common_shapes() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[5]), vec![1]);
        assert_eq!(contiguous_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn ravel_unravel_round_trip() {
        let shape = [3, 4, 5];
        for flat in 0..numel(&shape) {
            let idx = unravel_index(flat, &shape);
            assert_eq!(ravel_index(&idx, &shape), flat);
        }
    }

    #[test]
    fn box_bounds_checks() {
        assert!(box_in_bounds(&[4, 4], &[1, 2], &[3, 2]));
        assert!(!box_in_bounds(&[4, 4], &[1, 2], &[4, 2]));
        assert!(!box_in_bounds(&[4, 4], &[1], &[1, 1]));
        // Degenerate zero-length boxes are in bounds.
        assert!(box_in_bounds(&[4, 4], &[4, 4], &[0, 0]));
    }

    #[test]
    fn intersection_basics() {
        assert_eq!(
            intersect_boxes(&[0, 0], &[4, 4], &[2, 2], &[4, 4]),
            Some((vec![2, 2], vec![2, 2]))
        );
        assert_eq!(intersect_boxes(&[0], &[2], &[2], &[2]), None);
        assert_eq!(intersect_boxes(&[0], &[2], &[0, 0], &[2, 2]), None);
    }

    #[test]
    fn even_split_matches_chunk_semantics() {
        // 10 into 3 -> 4, 3, 3
        assert_eq!(even_split(10, 3, 0), (0, 4));
        assert_eq!(even_split(10, 3, 1), (4, 3));
        assert_eq!(even_split(10, 3, 2), (7, 3));
        // More parts than elements -> trailing zero-length chunks.
        assert_eq!(even_split(2, 4, 0), (0, 1));
        assert_eq!(even_split(2, 4, 3), (2, 0));
    }

    proptest! {
        #[test]
        fn even_split_partitions(total in 0usize..10_000, parts in 1usize..64) {
            let mut cursor = 0usize;
            for p in 0..parts {
                let (off, len) = even_split(total, parts, p);
                prop_assert_eq!(off, cursor);
                cursor += len;
                // Chunks differ in size by at most one.
                prop_assert!(len == total / parts || len == total / parts + 1);
            }
            prop_assert_eq!(cursor, total);
        }

        #[test]
        fn intersect_is_commutative_and_contained(
            ao in proptest::collection::vec(0usize..20, 1..4),
            al_raw in proptest::collection::vec(1usize..20, 1..4),
            bo in proptest::collection::vec(0usize..20, 1..4),
            bl_raw in proptest::collection::vec(1usize..20, 1..4),
        ) {
            let rank = ao.len().min(al_raw.len()).min(bo.len()).min(bl_raw.len());
            let (ao, al) = (&ao[..rank], &al_raw[..rank]);
            let (bo, bl) = (&bo[..rank], &bl_raw[..rank]);
            let i1 = intersect_boxes(ao, al, bo, bl);
            let i2 = intersect_boxes(bo, bl, ao, al);
            prop_assert_eq!(i1.clone(), i2);
            if let Some((off, len)) = i1 {
                for d in 0..rank {
                    prop_assert!(off[d] >= ao[d] && off[d] >= bo[d]);
                    prop_assert!(off[d] + len[d] <= ao[d] + al[d]);
                    prop_assert!(off[d] + len[d] <= bo[d] + bl[d]);
                    prop_assert!(len[d] > 0);
                }
            }
        }
    }
}
