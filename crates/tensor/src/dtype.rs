//! Element types supported by the checkpoint system.
//!
//! The set mirrors what LFM training states actually contain: `bf16`/`f16`
//! model weights, `f32` master weights and Adam moments, integer step
//! counters, and byte blobs for opaque extra state.

use serde::{Deserialize, Serialize};

/// Numeric element type of a [`crate::Tensor`].
///
/// Half-precision types are carried as opaque 2-byte code units: the
/// checkpointing system never performs arithmetic on tensor elements, it only
/// moves bytes, so no `half` crate dependency is needed. Software conversions
/// ([`f16_to_f32`] etc.) exist for the training substrate and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// IEEE 754 double precision.
    F64,
    /// IEEE 754 single precision.
    F32,
    /// IEEE 754 half precision (1 sign, 5 exponent, 10 mantissa bits).
    F16,
    /// bfloat16 (1 sign, 8 exponent, 7 mantissa bits).
    BF16,
    /// 64-bit signed integer.
    I64,
    /// 32-bit signed integer.
    I32,
    /// 16-bit signed integer.
    I16,
    /// 8-bit unsigned integer (also used for raw byte payloads).
    U8,
    /// Boolean stored as one byte.
    Bool,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            DType::F64 | DType::I64 => 8,
            DType::F32 | DType::I32 => 4,
            DType::F16 | DType::BF16 | DType::I16 => 2,
            DType::U8 | DType::Bool => 1,
        }
    }

    /// Short canonical name, used in metadata files and monitoring output.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F64 => "f64",
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::BF16 => "bf16",
            DType::I64 => "i64",
            DType::I32 => "i32",
            DType::I16 => "i16",
            DType::U8 => "u8",
            DType::Bool => "bool",
        }
    }

    /// Parse the canonical name produced by [`DType::name`].
    pub fn parse(s: &str) -> Option<DType> {
        Some(match s {
            "f64" => DType::F64,
            "f32" => DType::F32,
            "f16" => DType::F16,
            "bf16" => DType::BF16,
            "i64" => DType::I64,
            "i32" => DType::I32,
            "i16" => DType::I16,
            "u8" => DType::U8,
            "bool" => DType::Bool,
            _ => return None,
        })
    }

    /// Whether the dtype is a floating-point family member.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F64 | DType::F32 | DType::F16 | DType::BF16)
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Convert an `f32` to the nearest IEEE `f16` bit pattern (round-to-nearest-even).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: preserve a quiet NaN payload bit if any mantissa set.
        return sign | 0x7c00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal range. Round mantissa from 23 to 10 bits.
        let mant16 = mant >> 13;
        let round_bit = (mant >> 12) & 1;
        let sticky = mant & 0x0fff;
        let mut h = sign as u32 | (((unbiased + 15) as u32) << 10) | mant16;
        if round_bit == 1 && (sticky != 0 || (mant16 & 1) == 1) {
            h += 1; // may carry into exponent, which is the correct behaviour
        }
        return h as u16;
    }
    if unbiased >= -24 {
        // Subnormal f16.
        let shift = (-14 - unbiased) as u32;
        let full = mant | 0x0080_0000; // implicit leading 1
        let mant16 = full >> (13 + shift);
        let rem_shift = 12 + shift;
        let round_bit = (full >> rem_shift) & 1;
        let sticky = full & ((1u32 << rem_shift) - 1);
        let mut h = sign as u32 | mant16;
        if round_bit == 1 && (sticky != 0 || (mant16 & 1) == 1) {
            h += 1;
        }
        return h as u16;
    }
    sign // underflow to signed zero
}

/// Convert an IEEE `f16` bit pattern to `f32` (exact).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13) // inf / nan
    } else if exp == 0 {
        if mant == 0 {
            sign // signed zero
        } else {
            // Subnormal: normalize.
            let mut e = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (((127 - 15 + e + 1) as u32) << 23) | (m << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Convert an `f32` to the nearest `bf16` bit pattern (round-to-nearest-even).
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040; // quiet the NaN
    }
    let round_bit = (bits >> 15) & 1;
    let sticky = bits & 0x7fff;
    let mut b = bits >> 16;
    if round_bit == 1 && (sticky != 0 || (b & 1) == 1) {
        b += 1;
    }
    b as u16
}

/// Convert a `bf16` bit pattern to `f32` (exact).
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_names_round_trip() {
        let all = [
            DType::F64,
            DType::F32,
            DType::F16,
            DType::BF16,
            DType::I64,
            DType::I32,
            DType::I16,
            DType::U8,
            DType::Bool,
        ];
        for dt in all {
            assert_eq!(DType::parse(dt.name()), Some(dt));
            assert!(dt.size() >= 1 && dt.size() <= 8);
        }
        assert_eq!(DType::parse("f128"), None);
    }

    #[test]
    fn f16_round_trip_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 65504.0, -65504.0, 2.0f32.powi(-14)] {
            let h = f32_to_f16(v);
            assert_eq!(f16_to_f32(h), v, "value {v}");
        }
    }

    #[test]
    fn f16_specials() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        // Overflow saturates to infinity.
        assert_eq!(f16_to_f32(f32_to_f16(1e10)), f32::INFINITY);
        // Tiny values underflow to zero.
        assert_eq!(f16_to_f32(f32_to_f16(1e-10)), 0.0);
    }

    #[test]
    fn f16_subnormals() {
        let smallest = 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f32_to_f16(smallest)), smallest);
        let sub = 3.0 * 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f32_to_f16(sub)), sub);
    }

    #[test]
    fn bf16_round_trip_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -2.5, 2.0f32.powi(120), 1.5 * 2.0f32.powi(-120)] {
            let b = f32_to_bf16(v);
            let back = bf16_to_f32(b);
            // bf16 has ~3 decimal digits; the chosen values are exactly representable.
            assert_eq!(back, v, "value {v}");
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_rounding_is_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties to even -> 1.0.
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(halfway)), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16_to_f32(f32_to_f16(above)), 1.0 + 2.0f32.powi(-10));
    }
}
