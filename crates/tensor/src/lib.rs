//! # bcp-tensor — tensor substrate for ByteCheckpoint-rs
//!
//! The checkpointing system (the paper's contribution) manipulates tensors
//! only through their *storage-level* properties: dtype, shape, strides and
//! raw little-endian bytes. This crate provides exactly that substrate:
//!
//! * [`DType`] — numeric element types, including IEEE `f16` and `bf16`
//!   (stored as raw `u16` code units with software conversion, since the
//!   checkpoint path never does arithmetic on them).
//! * [`Tensor`] — a dense, row-major, contiguous n-dimensional tensor backed
//!   by [`bytes::Bytes`], or a **meta tensor** (shape/dtype only, no
//!   storage). Meta tensors let the planner run paper-scale workloads
//!   (hundreds of billions of parameters) without allocating data, mirroring
//!   PyTorch's meta device.
//! * n-D *box* operations — [`Tensor::extract_box`] / [`Tensor::write_box`]
//!   copy hyper-rectangular regions; these are the primitive behind
//!   load-time resharding (intersecting saved shards with target shards).
//! * [`checksum::crc32`] — integrity checksums for storage files.
//! * [`fill`] — deterministic, parallelism-independent pseudo-random data so
//!   that resharding correctness can be verified bitwise.

pub mod checksum;
pub mod dtype;
pub mod fill;
pub mod layout;
pub mod tensor;

pub use dtype::DType;
pub use layout::{contiguous_strides, numel, ravel_index, unravel_index};
pub use tensor::{Storage, Tensor};

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// An n-D box (offsets + lengths) does not fit inside the tensor shape.
    BoxOutOfBounds { shape: Vec<usize>, offsets: Vec<usize>, lengths: Vec<usize> },
    /// Ranks (number of dimensions) of two arguments disagree.
    RankMismatch { expected: usize, got: usize },
    /// Shapes disagree where they must match exactly.
    ShapeMismatch { expected: Vec<usize>, got: Vec<usize> },
    /// DTypes disagree where they must match exactly.
    DTypeMismatch { expected: DType, got: DType },
    /// A data-accessing operation was attempted on a meta tensor.
    MetaTensor,
    /// A flat range `[start, start+len)` exceeds the number of elements.
    FlatRangeOutOfBounds { numel: usize, start: usize, len: usize },
    /// The raw byte buffer length does not match `numel * dtype.size()`.
    BufferSizeMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::BoxOutOfBounds { shape, offsets, lengths } => write!(
                f,
                "box offsets={offsets:?} lengths={lengths:?} out of bounds for shape {shape:?}"
            ),
            TensorError::RankMismatch { expected, got } => {
                write!(f, "rank mismatch: expected {expected}, got {got}")
            }
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            TensorError::DTypeMismatch { expected, got } => {
                write!(f, "dtype mismatch: expected {expected:?}, got {got:?}")
            }
            TensorError::MetaTensor => {
                write!(f, "operation requires materialized data, got meta tensor")
            }
            TensorError::FlatRangeOutOfBounds { numel, start, len } => write!(
                f,
                "flat range [{start}, {}) out of bounds for {numel} elements",
                start + len
            ),
            TensorError::BufferSizeMismatch { expected, got } => {
                write!(f, "buffer size mismatch: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
