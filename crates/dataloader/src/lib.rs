//! # bcp-dataloader — token-buffer dataloader substrate
//!
//! The paper's dataloader "incorporates a token buffer to cache input
//! samples of varying lengths read from the data sources; when the number of
//! accumulated tokens reaches the context window size, the dataloader
//! assembles all cached samples into a batch" (§2.1). Its state splits into
//! *replicated* (worker counts, dataset paths, sampling ratios) and
//! *sharded* (token buffers, data-retrieval offsets) parts (§3.2), and on a
//! DP-degree change the sharded parts "must be either split or merged ... so
//! that the resumed dataloaders do not discard cached data and do not
//! retrain data that has already been sampled and fed" (§3.3, Fig. 9).
//!
//! The exact-resume machinery here is the interesting part: each data source
//! is a deterministic sample stream `0, 1, 2, …`; readers consume disjoint
//! round-robin *stripes* of the not-yet-consumed enumeration. A reshard
//! merges every reader's progress into a `(frontier, exceptions)` summary of
//! the consumed set and re-stripes the remainder across the new readers —
//! provably no sample lost, none repeated (property-tested).
//!
//! [`Dataloader`] adds the rank-level machinery: multiple read workers,
//! round-robin batch assembly, and checkpoint-state collection with the
//! §4.4 prefetching optimization.

pub mod loader;
pub mod reshard;
pub mod source;
pub mod state;

pub use loader::{CollectStats, Dataloader};
pub use reshard::reshard_states;
pub use source::{sample_tokens, DataSource, Sample};
pub use state::{LoaderReplicatedState, LoaderShardState, ReaderState, SourceCursor};
