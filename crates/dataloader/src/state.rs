//! Dataloader state: the replicated / sharded split of §3.2, and the
//! stripe-cursor machinery that makes resumption exact.

use crate::source::{DataSource, Sample};
use serde::{Deserialize, Serialize};

/// Replicated dataloader state: "the number of data reading workers, paths
/// to source datasets, and sampling ratios ... identical across all I/O
/// workers in different ranks". Saved once, by rank 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoaderReplicatedState {
    /// Read workers per rank.
    pub workers_per_rank: usize,
    /// Data-parallel degree of the job that saved this state.
    pub dp_size: usize,
    /// The data sources (paths + sampling ratios in the paper's terms).
    pub sources: Vec<DataSource>,
    /// Context window: token threshold that triggers batch assembly.
    pub context_window: u32,
}

/// Progress cursor of one reader into one source.
///
/// The *consumed set* of a source at the last (re)stripe point is summarized
/// as `frontier` (every index below it is consumed) plus `exceptions`
/// (consumed indices at or above the frontier). The not-yet-consumed indices
/// form an ascending enumeration `u_0 < u_1 < …`; this reader owns
/// enumeration positions `stripe_id, stripe_id + stripe_count, …` and has
/// drawn the first `pos` of them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceCursor {
    /// All indices `< frontier` were consumed at stripe time.
    pub frontier: u64,
    /// Consumed indices `>= frontier` at stripe time, ascending, deduped.
    pub exceptions: Vec<u64>,
    /// This reader's stripe (its global reader id at stripe time).
    pub stripe_id: u64,
    /// Total stripes (global reader count at stripe time).
    pub stripe_count: u64,
    /// Stripe elements already drawn by this reader.
    pub pos: u64,
}

impl SourceCursor {
    /// Fresh cursor for a brand-new job.
    pub fn fresh(stripe_id: u64, stripe_count: u64) -> SourceCursor {
        SourceCursor { frontier: 0, exceptions: Vec::new(), stripe_id, stripe_count, pos: 0 }
    }

    /// The `k`-th element (0-based) of the ascending enumeration of
    /// not-yet-consumed indices at stripe time.
    pub fn unconsumed_nth(&self, k: u64) -> u64 {
        // Candidate ignoring exceptions, then push past each exception ≤
        // candidate. Exceptions are sorted, so one pass suffices.
        let mut candidate = self.frontier + k;
        for &e in &self.exceptions {
            if e <= candidate {
                candidate += 1;
            } else {
                break;
            }
        }
        candidate
    }

    /// Source index this reader's `j`-th draw returns.
    pub fn index_of_draw(&self, j: u64) -> u64 {
        self.unconsumed_nth(j * self.stripe_count + self.stripe_id)
    }

    /// Draw the next index, advancing the cursor.
    pub fn draw(&mut self) -> u64 {
        let idx = self.index_of_draw(self.pos);
        self.pos += 1;
        idx
    }

    /// Every index this cursor has consumed since stripe time, ascending.
    pub fn consumed_since_stripe(&self) -> Vec<u64> {
        (0..self.pos).map(|j| self.index_of_draw(j)).collect()
    }
}

/// One read worker's sharded state: its per-source cursors, its token
/// buffer, and its deterministic source-mixing counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReaderState {
    /// Global reader id = `dp_rank * workers_per_rank + worker`.
    pub reader_id: u64,
    /// Per-source progress cursors (same order as the replicated sources).
    pub cursors: Vec<SourceCursor>,
    /// Cached samples not yet assembled into a batch.
    pub buffer: Vec<Sample>,
    /// Source-mixing draw counter (resets at reshard; ratios are
    /// statistical, not positional).
    pub mix_counter: u64,
    /// Materialized token payloads of the buffered samples — production
    /// token buffers store the actual tokens, which is what makes them
    /// "as large as 20 GB in text-to-video LFM training" (§6.1). Optional:
    /// samples are identity-addressed and recomputable, so resharding
    /// clears this and the destination re-materializes on demand.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub token_bytes: Vec<u8>,
}

impl ReaderState {
    /// Fresh reader for a brand-new job over `num_sources` sources.
    pub fn fresh(reader_id: u64, total_readers: u64, num_sources: usize) -> ReaderState {
        ReaderState {
            reader_id,
            cursors: (0..num_sources)
                .map(|_| SourceCursor::fresh(reader_id, total_readers))
                .collect(),
            buffer: Vec::new(),
            mix_counter: 0,
            token_bytes: Vec::new(),
        }
    }

    /// Materialize the buffered samples' token payloads (2 bytes per token,
    /// deterministic). This is what checkpointing a production token buffer
    /// actually uploads.
    pub fn materialize_tokens(&mut self) {
        let total: usize = self.buffer.iter().map(|s| s.tokens as usize).sum();
        let mut bytes = Vec::with_capacity(total * 2);
        for s in &self.buffer {
            let seed = bcp_tensor::fill::splitmix64(s.index ^ (s.source as u64) << 32);
            for t in 0..s.tokens as u64 {
                let v = bcp_tensor::fill::splitmix64(seed ^ t) as u16;
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        self.token_bytes = bytes;
    }

    /// Total buffered tokens.
    pub fn buffered_tokens(&self) -> u64 {
        self.buffer.iter().map(|s| s.tokens as u64).sum()
    }

    /// Serialized size in bytes (drives checkpoint file sizes and the
    /// state-collection cost model in §4.4).
    pub fn state_bytes(&self) -> u64 {
        serde_json::to_vec(self).map(|v| v.len() as u64).unwrap_or(0)
    }
}

/// One DP rank's sharded dataloader state: its read workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoaderShardState {
    /// The DP rank that owned these readers.
    pub dp_rank: usize,
    /// Per-worker states.
    pub readers: Vec<ReaderState>,
    /// Round-robin batch-assembly cursor over the workers. Without it the
    /// post-resume batch order would permute across workers — bitwise
    /// resumption (Fig. 17) requires it.
    #[serde(default)]
    pub next_worker: usize,
}

impl LoaderShardState {
    /// Pack to bytes for storage.
    pub fn pack(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("plain struct serializes")
    }

    /// Unpack from stored bytes.
    pub fn unpack(data: &[u8]) -> Option<LoaderShardState> {
        serde_json::from_slice(data).ok()
    }
}

impl LoaderReplicatedState {
    /// Pack to bytes for storage.
    pub fn pack(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("plain struct serializes")
    }

    /// Unpack from stored bytes.
    pub fn unpack(data: &[u8]) -> Option<LoaderReplicatedState> {
        serde_json::from_slice(data).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconsumed_enumeration_skips_exceptions() {
        let c = SourceCursor {
            frontier: 10,
            exceptions: vec![11, 13],
            stripe_id: 0,
            stripe_count: 1,
            pos: 0,
        };
        // Unconsumed: 10, 12, 14, 15, 16, ...
        assert_eq!(c.unconsumed_nth(0), 10);
        assert_eq!(c.unconsumed_nth(1), 12);
        assert_eq!(c.unconsumed_nth(2), 14);
        assert_eq!(c.unconsumed_nth(3), 15);
    }

    #[test]
    fn stripes_partition_fresh_stream() {
        // 3 readers over a fresh source: draws must interleave 0..n
        // disjointly and completely.
        let mut seen = Vec::new();
        for sid in 0..3u64 {
            let mut c = SourceCursor::fresh(sid, 3);
            for _ in 0..5 {
                seen.push(c.draw());
            }
        }
        seen.sort();
        assert_eq!(seen, (0..15).collect::<Vec<u64>>());
    }

    #[test]
    fn consumed_since_stripe_matches_draws() {
        let mut c = SourceCursor::fresh(1, 2);
        let drawn: Vec<u64> = (0..4).map(|_| c.draw()).collect();
        assert_eq!(c.consumed_since_stripe(), drawn);
        assert_eq!(drawn, vec![1, 3, 5, 7]);
    }

    #[test]
    fn shard_state_pack_round_trip() {
        let state = LoaderShardState {
            dp_rank: 2,
            readers: vec![ReaderState::fresh(4, 8, 2)],
            next_worker: 0,
        };
        let packed = state.pack();
        assert_eq!(LoaderShardState::unpack(&packed).unwrap(), state);
    }
}
