//! Dataloader resharding (paper §3.3, Fig. 9).
//!
//! "When the DP degree size remains constant while other parallel degrees
//! are altered, the token buffers should be copied to the destination
//! workers for bitwise-correct resuming; when there is a change in the DP
//! degree size, the token buffers must be either split or merged accordingly
//! to ensure that the resumed dataloaders do not discard cached data and do
//! not retrain data that has already been sampled and fed."
//!
//! The merge works on the consumed-set summaries of [`crate::SourceCursor`]:
//! union all readers' progress into a fresh `(frontier, exceptions)` pair
//! per source, then re-stripe the untouched remainder of each stream across
//! the new reader set. Buffered (drawn-but-unemitted) samples are pooled,
//! deterministically ordered, and dealt out contiguously.

use crate::state::{LoaderReplicatedState, LoaderShardState, ReaderState, SourceCursor};
use bcp_tensor::layout::even_split;
use std::collections::BTreeSet;

/// Reshard dataloader states to a new `(dp, workers-per-rank)` shape.
///
/// When the reader grid is unchanged this is a pure copy (the bitwise-exact
/// fast path). Otherwise every stream's remainder is re-striped and buffers
/// are redistributed; the invariant — every sample either already emitted,
/// sitting in exactly one buffer, or exactly once in the future stream — is
/// property-tested in this module.
pub fn reshard_states(
    replicated: &LoaderReplicatedState,
    shards: &[LoaderShardState],
    new_dp: usize,
    new_workers_per_rank: usize,
) -> (LoaderReplicatedState, Vec<LoaderShardState>) {
    assert!(new_dp > 0 && new_workers_per_rank > 0, "degenerate target shape");
    assert_eq!(shards.len(), replicated.dp_size, "need every old shard to reshard");

    let new_replicated = LoaderReplicatedState {
        workers_per_rank: new_workers_per_rank,
        dp_size: new_dp,
        sources: replicated.sources.clone(),
        context_window: replicated.context_window,
    };

    // Fast path: unchanged reader grid — copy states verbatim.
    if new_dp == replicated.dp_size && new_workers_per_rank == replicated.workers_per_rank {
        return (new_replicated, shards.to_vec());
    }

    let num_sources = replicated.sources.len();
    let old_readers: Vec<&ReaderState> = shards.iter().flat_map(|s| s.readers.iter()).collect();

    // Per source: merge every reader's progress into (frontier, exceptions).
    let mut merged: Vec<(u64, Vec<u64>)> = Vec::with_capacity(num_sources);
    for s in 0..num_sources {
        let mut frontier = 0u64;
        let mut extra: BTreeSet<u64> = BTreeSet::new();
        for r in &old_readers {
            let c = &r.cursors[s];
            // Base consumed set of this reader's stripe epoch.
            frontier = frontier.max(c.frontier);
            extra.extend(c.exceptions.iter().copied());
            extra.extend(c.consumed_since_stripe());
        }
        // Normalize: advance the frontier through any contiguous run of
        // consumed indices, keep the rest as exceptions.
        extra.retain(|&e| e >= frontier);
        while extra.remove(&frontier) {
            frontier += 1;
        }
        merged.push((frontier, extra.into_iter().collect()));
    }

    // Pool all buffered samples in a deterministic order.
    let mut pooled: Vec<crate::source::Sample> =
        old_readers.iter().flat_map(|r| r.buffer.iter().copied()).collect();
    pooled.sort();

    // Build the new reader grid.
    let total_new = (new_dp * new_workers_per_rank) as u64;
    let mut new_shards: Vec<LoaderShardState> = Vec::with_capacity(new_dp);
    for rank in 0..new_dp {
        let mut readers = Vec::with_capacity(new_workers_per_rank);
        for w in 0..new_workers_per_rank {
            let reader_id = (rank * new_workers_per_rank + w) as u64;
            let cursors = merged
                .iter()
                .map(|(frontier, exceptions)| SourceCursor {
                    frontier: *frontier,
                    exceptions: exceptions.clone(),
                    stripe_id: reader_id,
                    stripe_count: total_new,
                    pos: 0,
                })
                .collect();
            let (off, len) = even_split(pooled.len(), total_new as usize, reader_id as usize);
            readers.push(ReaderState {
                reader_id,
                cursors,
                buffer: pooled[off..off + len].to_vec(),
                mix_counter: 0,
                // Token payloads are identity-recomputable; destinations
                // re-materialize them lazily.
                token_bytes: Vec::new(),
            });
        }
        new_shards.push(LoaderShardState { dp_rank: rank, readers, next_worker: 0 });
    }
    (new_replicated, new_shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::Dataloader;
    use crate::source::{DataSource, Sample};
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn replicated(dp: usize, workers: usize) -> LoaderReplicatedState {
        LoaderReplicatedState {
            workers_per_rank: workers,
            dp_size: dp,
            sources: vec![
                DataSource { name: "web".into(), ratio: 0.6, seed: 100 },
                DataSource { name: "code".into(), ratio: 0.4, seed: 200 },
            ],
            context_window: 4096,
        }
    }

    /// Drive `batches` batches per rank; return (emitted, final shards).
    fn run_job(
        rep: &LoaderReplicatedState,
        shards: Option<Vec<LoaderShardState>>,
        batches: usize,
    ) -> (Vec<Sample>, Vec<LoaderShardState>) {
        let mut emitted = Vec::new();
        let mut out = Vec::new();
        for rank in 0..rep.dp_size {
            let mut dl = match &shards {
                Some(s) => Dataloader::from_states(rep.clone(), s[rank].clone()),
                None => Dataloader::new(rep.clone(), rank),
            };
            for _ in 0..batches {
                emitted.extend(dl.next_batch());
            }
            out.push(dl.shard_state());
        }
        (emitted, out)
    }

    fn assert_no_duplicates(samples: &[Sample]) {
        let mut seen = HashSet::new();
        for s in samples {
            assert!(seen.insert((s.source, s.index)), "sample {s:?} seen twice");
        }
    }

    #[test]
    fn unchanged_grid_is_verbatim_copy() {
        let rep = replicated(2, 2);
        let (_, shards) = run_job(&rep, None, 3);
        let (new_rep, new_shards) = reshard_states(&rep, &shards, 2, 2);
        assert_eq!(new_rep, rep);
        assert_eq!(new_shards, shards);
    }

    #[test]
    fn dp_shrink_merges_without_loss_or_repeat() {
        // Fig. 9 bottom: DP 4 -> 2.
        let rep = replicated(4, 2);
        let (emitted_before, shards) = run_job(&rep, None, 4);
        let (new_rep, new_shards) = reshard_states(&rep, &shards, 2, 2);
        let (emitted_after, final_shards) = run_job(&new_rep, Some(new_shards), 8);

        let mut all = emitted_before;
        all.extend(emitted_after);
        // Still-buffered samples count as "held", not lost.
        for s in &final_shards {
            for r in &s.readers {
                all.extend(r.buffer.iter().copied());
            }
        }
        assert_no_duplicates(&all);
    }

    #[test]
    fn dp_grow_splits_buffers() {
        // Fig. 9 / Fig. 16: DP 2 -> 4.
        let rep = replicated(2, 2);
        let (emitted_before, shards) = run_job(&rep, None, 5);
        let buffered_before: usize =
            shards.iter().flat_map(|s| &s.readers).map(|r| r.buffer.len()).sum();
        let (new_rep, new_shards) = reshard_states(&rep, &shards, 4, 2);
        let buffered_after: usize =
            new_shards.iter().flat_map(|s| &s.readers).map(|r| r.buffer.len()).sum();
        assert_eq!(buffered_before, buffered_after, "no cached sample may be discarded");

        let (emitted_after, _) = run_job(&new_rep, Some(new_shards), 3);
        let mut all = emitted_before;
        all.extend(emitted_after);
        assert_no_duplicates(&all);
    }

    #[test]
    fn no_past_sample_is_redrawn_after_reshard() {
        let rep = replicated(3, 1);
        let (emitted_before, shards) = run_job(&rep, None, 6);
        let consumed_before: HashSet<(usize, u64)> = emitted_before
            .iter()
            .map(|s| (s.source, s.index))
            .chain(
                shards
                    .iter()
                    .flat_map(|s| &s.readers)
                    .flat_map(|r| r.buffer.iter().map(|b| (b.source, b.index))),
            )
            .collect();
        let (new_rep, new_shards) = reshard_states(&rep, &shards, 2, 2);
        // Fresh draws from the new cursors must avoid everything consumed.
        for shard in &new_shards {
            for reader in &shard.readers {
                for (src, cursor) in reader.cursors.iter().enumerate() {
                    let mut c = cursor.clone();
                    for _ in 0..20 {
                        let idx = c.draw();
                        assert!(
                            !consumed_before.contains(&(src, idx)),
                            "source {src} sample {idx} would be retrained"
                        );
                    }
                }
            }
        }
        let _ = new_rep;
    }

    #[test]
    fn chained_reshards_preserve_invariants() {
        // grow -> shrink -> grow, drawing between each.
        let mut rep = replicated(2, 1);
        let (mut all, mut shards) = run_job(&rep, None, 3);
        for &(dp, w) in &[(4usize, 1usize), (1, 2), (3, 2)] {
            let (nr, ns) = reshard_states(&rep, &shards, dp, w);
            rep = nr;
            let (emitted, s) = run_job(&rep, Some(ns), 3);
            all.extend(emitted);
            shards = s;
        }
        for s in &shards {
            for r in &s.readers {
                all.extend(r.buffer.iter().copied());
            }
        }
        assert_no_duplicates(&all);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_reshard_sequences_never_lose_or_repeat(
            shape_seq in proptest::collection::vec((1usize..5, 1usize..4), 1..4),
            batches in 1usize..5,
        ) {
            let mut rep = replicated(2, 2);
            let (mut all, mut shards) = run_job(&rep, None, batches);
            for (dp, w) in shape_seq {
                let (nr, ns) = reshard_states(&rep, &shards, dp, w);
                rep = nr;
                let (emitted, s) = run_job(&rep, Some(ns), batches);
                all.extend(emitted);
                shards = s;
            }
            for s in &shards {
                for r in &s.readers {
                    all.extend(r.buffer.iter().copied());
                }
            }
            let mut keys: Vec<(usize, u64)> = all.iter().map(|s| (s.source, s.index)).collect();
            let n = keys.len();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), n, "duplicate sample detected");
        }
    }
}
