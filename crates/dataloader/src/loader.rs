//! The rank-level dataloader: read workers, batch assembly, and checkpoint
//! state collection with prefetching (§4.4).

use crate::source::Sample;
use crate::state::{LoaderReplicatedState, LoaderShardState, ReaderState};
use bcp_tensor::fill::splitmix64;
use std::collections::VecDeque;
use std::time::Duration;

/// Cost of collecting dataloader state without prefetching: the paper
/// reports ~8 s for 4 workers and ~1 GB of state, i.e. roughly 8 ns per
/// byte of state walked plus per-worker signalling.
const COLLECT_NS_PER_BYTE: u64 = 8;
const COLLECT_NS_PER_WORKER: u64 = 50_000_000; // 50 ms signalling/pause each

/// What a state collection cost (reported, not slept — callers and the
/// simulator decide what to do with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectStats {
    /// Blocking time the collection would impose on training.
    pub blocking: Duration,
    /// Whether the state came from the prefetch queue.
    pub prefetched: bool,
    /// Total state bytes collected.
    pub bytes: u64,
}

/// One DP rank's dataloader: `workers_per_rank` read workers, each with its
/// own token buffer and source cursors; batches are taken from workers
/// round-robin.
#[derive(Debug, Clone)]
pub struct Dataloader {
    replicated: LoaderReplicatedState,
    dp_rank: usize,
    readers: Vec<ReaderState>,
    next_worker: usize,
    /// States prepared one step before checkpointing ("each read worker
    /// prepares its state during the training step just before checkpointing
    /// and puts the state into its state queue").
    prefetch_queue: VecDeque<(Vec<ReaderState>, usize)>,
}

impl Dataloader {
    /// A fresh dataloader for `dp_rank` of a new job.
    pub fn new(replicated: LoaderReplicatedState, dp_rank: usize) -> Dataloader {
        let total = (replicated.dp_size * replicated.workers_per_rank) as u64;
        let readers = (0..replicated.workers_per_rank)
            .map(|w| {
                ReaderState::fresh(
                    (dp_rank * replicated.workers_per_rank + w) as u64,
                    total,
                    replicated.sources.len(),
                )
            })
            .collect();
        Dataloader { replicated, dp_rank, readers, next_worker: 0, prefetch_queue: VecDeque::new() }
    }

    /// Rebuild a dataloader from checkpointed states (after resharding).
    pub fn from_states(replicated: LoaderReplicatedState, shard: LoaderShardState) -> Dataloader {
        Dataloader {
            replicated,
            dp_rank: shard.dp_rank,
            next_worker: shard.next_worker % shard.readers.len().max(1),
            readers: shard.readers,
            prefetch_queue: VecDeque::new(),
        }
    }

    /// The replicated configuration.
    pub fn replicated(&self) -> &LoaderReplicatedState {
        &self.replicated
    }

    /// This rank's current sharded state (what a checkpoint stores).
    pub fn shard_state(&self) -> LoaderShardState {
        LoaderShardState {
            dp_rank: self.dp_rank,
            readers: self.readers.clone(),
            next_worker: self.next_worker,
        }
    }

    /// Pick which source a reader draws from next: deterministic weighted
    /// choice by the reader's mixing counter.
    fn pick_source(&self, reader: &ReaderState) -> usize {
        let total: f64 = self.replicated.sources.iter().map(|s| s.ratio).sum();
        let h = splitmix64(reader.reader_id ^ splitmix64(reader.mix_counter));
        let mut x = (h >> 11) as f64 / (1u64 << 53) as f64 * total;
        for (i, s) in self.replicated.sources.iter().enumerate() {
            if x < s.ratio {
                return i;
            }
            x -= s.ratio;
        }
        self.replicated.sources.len() - 1
    }

    /// Advance one read worker by one sample; if its buffer reaches the
    /// context window, all cached samples are assembled into a batch.
    pub fn poll(&mut self) -> Option<Vec<Sample>> {
        let w = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.readers.len();
        let source = self.pick_source(&self.readers[w]);
        let reader = &mut self.readers[w];
        reader.mix_counter += 1;
        let index = reader.cursors[source].draw();
        let seed = self.replicated.sources[source].seed;
        reader.buffer.push(Sample::new(source, seed, index));
        if reader.buffered_tokens() >= self.replicated.context_window as u64 {
            return Some(std::mem::take(&mut reader.buffer));
        }
        None
    }

    /// Produce the next batch, polling workers until one fills.
    pub fn next_batch(&mut self) -> Vec<Sample> {
        loop {
            if let Some(b) = self.poll() {
                return b;
            }
        }
    }

    /// §4.4 prefetching: called during the training step *before* a
    /// checkpoint step; each worker snapshots its state into the queue.
    pub fn prefetch_states(&mut self) {
        self.prefetch_queue.push_back((self.readers.clone(), self.next_worker));
    }

    /// Collect worker states for checkpointing. With a prefetched snapshot
    /// available the collection is queue polling ("near-zero delays");
    /// otherwise training pauses while every worker prepares its state, at a
    /// cost proportional to worker count and state size.
    pub fn collect_states(&mut self) -> (LoaderShardState, CollectStats) {
        if let Some((readers, next_worker)) = self.prefetch_queue.pop_front() {
            let bytes: u64 = readers.iter().map(|r| r.state_bytes()).sum();
            let shard = LoaderShardState { dp_rank: self.dp_rank, readers, next_worker };
            return (
                shard,
                CollectStats { blocking: Duration::from_micros(50), prefetched: true, bytes },
            );
        }
        let bytes: u64 = self.readers.iter().map(|r| r.state_bytes()).sum();
        let blocking = Duration::from_nanos(
            bytes * COLLECT_NS_PER_BYTE + self.readers.len() as u64 * COLLECT_NS_PER_WORKER,
        );
        (self.shard_state(), CollectStats { blocking, prefetched: false, bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DataSource;

    fn replicated(dp: usize, workers: usize) -> LoaderReplicatedState {
        LoaderReplicatedState {
            workers_per_rank: workers,
            dp_size: dp,
            sources: vec![
                DataSource { name: "web".into(), ratio: 0.7, seed: 100 },
                DataSource { name: "code".into(), ratio: 0.3, seed: 200 },
            ],
            context_window: 8192,
        }
    }

    #[test]
    fn batches_fill_the_context_window() {
        let mut dl = Dataloader::new(replicated(1, 2), 0);
        for _ in 0..10 {
            let batch = dl.next_batch();
            let tokens: u64 = batch.iter().map(|s| s.tokens as u64).sum();
            assert!(tokens >= 8192, "batch under-filled: {tokens}");
            // Samples are variable-length; a batch is several of them.
            assert!(batch.len() >= 2);
        }
    }

    #[test]
    fn trajectory_is_deterministic() {
        let mk = || {
            let mut dl = Dataloader::new(replicated(2, 2), 1);
            (0..5).map(|_| dl.next_batch()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn ranks_draw_disjoint_samples() {
        let mut all: Vec<Sample> = Vec::new();
        for rank in 0..2 {
            let mut dl = Dataloader::new(replicated(2, 2), rank);
            for _ in 0..10 {
                all.extend(dl.next_batch());
            }
            // Include still-buffered samples.
            for r in &dl.shard_state().readers {
                all.extend(r.buffer.iter().copied());
            }
        }
        let mut keys: Vec<(usize, u64)> = all.iter().map(|s| (s.source, s.index)).collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate samples across ranks");
    }

    #[test]
    fn resume_from_state_is_bitwise_identical() {
        // Fig. 17: with fixed RNG state, the post-restart sample trajectory
        // must be identical to the uninterrupted one.
        let mut uninterrupted = Dataloader::new(replicated(1, 2), 0);
        let mut restarted = Dataloader::new(replicated(1, 2), 0);
        for _ in 0..7 {
            uninterrupted.next_batch();
            restarted.next_batch();
        }
        // "Kill" the second loader and rebuild it from checkpointed state.
        let shard = restarted.shard_state();
        let mut resumed = Dataloader::from_states(replicated(1, 2), shard);
        for _ in 0..7 {
            assert_eq!(uninterrupted.next_batch(), resumed.next_batch());
        }
    }

    #[test]
    fn sampling_ratios_are_respected_statistically() {
        let mut dl = Dataloader::new(replicated(1, 1), 0);
        let mut counts = [0u64; 2];
        for _ in 0..60 {
            for s in dl.next_batch() {
                counts[s.source] += 1;
            }
        }
        let frac = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((0.6..0.8).contains(&frac), "web fraction {frac} far from 0.7");
    }

    #[test]
    fn prefetch_makes_collection_near_free() {
        let mut dl = Dataloader::new(replicated(1, 4), 0);
        for _ in 0..3 {
            dl.next_batch();
        }
        // Without prefetch: blocking grows with worker count / state size.
        let (_, cold) = dl.collect_states();
        assert!(!cold.prefetched);
        assert!(cold.blocking >= Duration::from_millis(200)); // 4 workers * 50ms

        // With prefetch: the snapshot was prepared a step earlier.
        dl.prefetch_states();
        dl.next_batch();
        let (shard, warm) = dl.collect_states();
        assert!(warm.prefetched);
        assert!(warm.blocking < Duration::from_millis(1));
        // The snapshot reflects the state at prefetch time, i.e. before the
        // extra batch was drawn.
        let now = dl.shard_state();
        assert_ne!(shard, now);
    }
}
