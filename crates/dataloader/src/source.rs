//! Deterministic data sources and samples.

use bcp_tensor::fill::splitmix64;
use serde::{Deserialize, Serialize};

/// A data source: an unbounded deterministic stream of variable-length
/// samples (stands in for a tokenized dataset shard on HDFS).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSource {
    /// Human-readable name (e.g. `"web"`, `"code"`, `"math"`).
    pub name: String,
    /// Sampling weight relative to other sources.
    pub ratio: f64,
    /// Seed of the sample stream.
    pub seed: u64,
}

/// One cached input sample. `tokens` is its length; the actual token values
/// are a pure function of `(source seed, index)` so nothing but the identity
/// needs to be stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sample {
    /// Index of the source in the replicated source list.
    pub source: usize,
    /// Sample index within the source's stream.
    pub index: u64,
    /// Token length of the sample.
    pub tokens: u32,
}

/// Deterministic token length of sample `index` of a source: between 64 and
/// 4159 tokens, shaped like real tokenized-document length variation.
pub fn sample_tokens(source_seed: u64, index: u64) -> u32 {
    let h = splitmix64(source_seed ^ splitmix64(index.wrapping_add(0x5A5A)));
    64 + (h % 4096) as u32
}

impl Sample {
    /// Construct with the deterministic token length.
    pub fn new(source: usize, source_seed: u64, index: u64) -> Sample {
        Sample { source, index, tokens: sample_tokens(source_seed, index) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_lengths_deterministic_and_bounded() {
        for i in 0..1000 {
            let t = sample_tokens(42, i);
            assert_eq!(t, sample_tokens(42, i));
            assert!((64..4160).contains(&t));
        }
        assert_ne!(sample_tokens(42, 0), sample_tokens(43, 0));
    }

    #[test]
    fn lengths_vary() {
        let distinct: std::collections::HashSet<u32> =
            (0..256).map(|i| sample_tokens(7, i)).collect();
        assert!(distinct.len() > 200);
    }
}
