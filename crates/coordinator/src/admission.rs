//! Admission control: whether a registering job may enter the control
//! plane, with typed backpressure instead of silent queueing.

use bcp_core::spec::JobSpec;
use serde::{Deserialize, Serialize};

/// The typed result of asking the coordinator to register a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AdmissionOutcome {
    /// The job is registered; checkpoint traffic may start.
    Admitted {
        /// The job id as registered (echoed for correlation).
        job_id: String,
        /// The fair-share weight the scheduler granted.
        weight: u64,
    },
    /// The control plane is at capacity *right now*; retry after the
    /// given delay. Registration was not recorded.
    Backpressure {
        /// Suggested client-side retry delay.
        retry_after_ms: u64,
        /// Which limit pushed back.
        reason: String,
    },
    /// The spec can never be admitted as submitted (validation or quota
    /// violation). Fix the spec; retrying unchanged is pointless.
    Rejected {
        /// What is wrong with the spec.
        reason: String,
    },
}

impl AdmissionOutcome {
    /// Whether the job was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted { .. })
    }
}

/// Capacity limits the coordinator enforces at registration time.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    /// Maximum concurrently registered jobs.
    pub max_jobs: usize,
    /// Aggregate declared per-step footprint across all registered jobs,
    /// in bytes; `0` = unlimited.
    pub max_total_step_bytes: u64,
    /// Retry delay suggested with backpressure responses.
    pub retry_after_ms: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy { max_jobs: 64, max_total_step_bytes: 0, retry_after_ms: 250 }
    }
}

impl AdmissionPolicy {
    /// Decide admission for `spec` given the current registry load.
    /// `active_jobs`/`active_step_bytes` must not include `spec` itself
    /// (re-registrations subtract the old entry first).
    pub fn decide(
        &self,
        spec: &JobSpec,
        active_jobs: usize,
        active_step_bytes: u64,
    ) -> AdmissionOutcome {
        if let Err(e) = spec.validate() {
            return AdmissionOutcome::Rejected { reason: e.to_string() };
        }
        if spec.quota.max_step_bytes > 0 && spec.step_bytes > spec.quota.max_step_bytes {
            return AdmissionOutcome::Rejected {
                reason: format!(
                    "declared step_bytes {} exceeds the job's own quota {}",
                    spec.step_bytes, spec.quota.max_step_bytes
                ),
            };
        }
        if active_jobs >= self.max_jobs {
            return AdmissionOutcome::Backpressure {
                retry_after_ms: self.retry_after_ms,
                reason: format!(
                    "at capacity: {} of {} job slots in use",
                    active_jobs, self.max_jobs
                ),
            };
        }
        if self.max_total_step_bytes > 0
            && active_step_bytes.saturating_add(spec.step_bytes) > self.max_total_step_bytes
        {
            return AdmissionOutcome::Backpressure {
                retry_after_ms: self.retry_after_ms,
                reason: format!(
                    "aggregate step bytes {} + {} would exceed {}",
                    active_step_bytes, spec.step_bytes, self.max_total_step_bytes
                ),
            };
        }
        AdmissionOutcome::Admitted {
            job_id: spec.job_id.clone(),
            weight: spec.quota.weight.max(1) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_core::spec::JobQuota;

    fn spec(id: &str, step_bytes: u64) -> JobSpec {
        JobSpec::new(id, format!("mem://jobs/{id}")).step_bytes(step_bytes)
    }

    #[test]
    fn admits_within_capacity() {
        let p = AdmissionPolicy::default();
        let out = p.decide(&spec("a", 1024), 0, 0);
        assert_eq!(out, AdmissionOutcome::Admitted { job_id: "a".into(), weight: 1 });
    }

    #[test]
    fn backpressure_at_job_capacity() {
        let p = AdmissionPolicy { max_jobs: 2, ..AdmissionPolicy::default() };
        assert!(matches!(
            p.decide(&spec("c", 0), 2, 0),
            AdmissionOutcome::Backpressure { retry_after_ms: 250, .. }
        ));
    }

    #[test]
    fn backpressure_on_aggregate_footprint() {
        let p = AdmissionPolicy { max_total_step_bytes: 1000, ..AdmissionPolicy::default() };
        assert!(p.decide(&spec("a", 600), 0, 0).is_admitted());
        assert!(matches!(p.decide(&spec("b", 600), 1, 600), AdmissionOutcome::Backpressure { .. }));
    }

    #[test]
    fn rejects_invalid_specs_permanently() {
        let p = AdmissionPolicy::default();
        assert!(matches!(p.decide(&spec("", 0), 0, 0), AdmissionOutcome::Rejected { .. }));
        let mut s = spec("big", 10);
        s.quota = JobQuota { max_step_bytes: 5, ..JobQuota::default() };
        assert!(matches!(p.decide(&s, 0, 0), AdmissionOutcome::Rejected { .. }));
    }

    #[test]
    fn admission_outcome_serde_round_trip() {
        for out in [
            AdmissionOutcome::Admitted { job_id: "j".into(), weight: 2 },
            AdmissionOutcome::Backpressure { retry_after_ms: 250, reason: "full".into() },
            AdmissionOutcome::Rejected { reason: "bad".into() },
        ] {
            let json = serde_json::to_string(&out).unwrap();
            let back: AdmissionOutcome = serde_json::from_str(&json).unwrap();
            assert_eq!(back, out);
        }
    }
}
