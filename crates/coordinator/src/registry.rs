//! The job registry: which jobs the control plane currently serves, and
//! what their checkpoint traffic has looked like.

use bcp_core::spec::JobSpec;
use bcp_monitor::{LatencyAccumulator, LatencySnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Commit-latency samples retained per job.
const LATENCY_WINDOW: usize = 512;

struct JobEntry {
    spec: JobSpec,
    registered_at: Instant,
    generation: u64,
    commits: u64,
    last_step: Option<u64>,
    bytes_committed: u64,
    latency: LatencyAccumulator,
}

/// Serializable per-job status (`bcpctl jobs` / `bcpctl status` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job identifier.
    pub job_id: String,
    /// World size of the registered spec.
    pub world_size: usize,
    /// Fair-share weight.
    pub weight: u64,
    /// Times this id has been registered (crash → re-register bumps it).
    pub generation: u64,
    /// Seconds since the current registration.
    pub registered_for_s: f64,
    /// Committed steps reported by the job.
    pub commits: u64,
    /// The most recent committed step, when any.
    pub last_step: Option<u64>,
    /// Total committed bytes reported by the job.
    pub bytes_committed: u64,
    /// Commit-latency percentile summary.
    pub latency: LatencySnapshot,
}

/// Thread-safe registry of the jobs the coordinator serves.
#[derive(Default)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<String, JobEntry>>,
}

impl JobRegistry {
    /// An empty registry.
    pub fn new() -> JobRegistry {
        JobRegistry::default()
    }

    /// Registered job count.
    pub fn len(&self) -> usize {
        self.jobs.lock().len()
    }

    /// Whether no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.jobs.lock().is_empty()
    }

    /// Aggregate declared per-step footprint, excluding `except` (used by
    /// admission when an id re-registers).
    pub fn total_step_bytes_except(&self, except: &str) -> u64 {
        self.jobs
            .lock()
            .iter()
            .filter(|(id, _)| id.as_str() != except)
            .map(|(_, e)| e.spec.step_bytes)
            .sum()
    }

    /// Job count excluding `except`.
    pub fn len_except(&self, except: &str) -> usize {
        self.jobs.lock().iter().filter(|(id, _)| id.as_str() != except).count()
    }

    /// Insert (or replace, preserving traffic history) a registration.
    /// Returns the registration generation (1 for a fresh id).
    pub fn register(&self, spec: JobSpec) -> u64 {
        let mut jobs = self.jobs.lock();
        match jobs.remove(&spec.job_id) {
            // Re-registration after a crash: same id, fresh spec, but the
            // commit history survives so `status` shows the whole lineage.
            Some(prev) => {
                let generation = prev.generation + 1;
                jobs.insert(
                    spec.job_id.clone(),
                    JobEntry {
                        spec,
                        registered_at: Instant::now(),
                        generation,
                        commits: prev.commits,
                        last_step: prev.last_step,
                        bytes_committed: prev.bytes_committed,
                        latency: prev.latency,
                    },
                );
                generation
            }
            None => {
                jobs.insert(
                    spec.job_id.clone(),
                    JobEntry {
                        spec,
                        registered_at: Instant::now(),
                        generation: 1,
                        commits: 0,
                        last_step: None,
                        bytes_committed: 0,
                        latency: LatencyAccumulator::new(LATENCY_WINDOW),
                    },
                );
                1
            }
        }
    }

    /// Remove a job. Returns whether it was present.
    pub fn deregister(&self, job_id: &str) -> bool {
        self.jobs.lock().remove(job_id).is_some()
    }

    /// Record one committed step for `job_id`. Returns `false` for an
    /// unknown job.
    pub fn record_commit(&self, job_id: &str, step: u64, bytes: u64, wall: Duration) -> bool {
        let mut jobs = self.jobs.lock();
        let Some(e) = jobs.get_mut(job_id) else { return false };
        e.commits += 1;
        e.last_step = Some(e.last_step.map_or(step, |s| s.max(step)));
        e.bytes_committed += bytes;
        e.latency.record(wall);
        true
    }

    /// The spec a job registered with, when present.
    pub fn spec(&self, job_id: &str) -> Option<JobSpec> {
        self.jobs.lock().get(job_id).map(|e| e.spec.clone())
    }

    /// One job's summary, when present.
    pub fn summary(&self, job_id: &str) -> Option<JobSummary> {
        self.jobs.lock().get(job_id).map(|e| summarize(job_id, e))
    }

    /// All summaries, sorted by job id.
    pub fn summaries(&self) -> Vec<JobSummary> {
        let jobs = self.jobs.lock();
        let mut out: Vec<JobSummary> = jobs.iter().map(|(id, e)| summarize(id, e)).collect();
        out.sort_by(|a, b| a.job_id.cmp(&b.job_id));
        out
    }
}

fn summarize(job_id: &str, e: &JobEntry) -> JobSummary {
    JobSummary {
        job_id: job_id.to_string(),
        world_size: e.spec.world_size(),
        weight: e.spec.quota.weight.max(1) as u64,
        generation: e.generation,
        registered_for_s: e.registered_at.elapsed().as_secs_f64(),
        commits: e.commits,
        last_step: e.last_step,
        bytes_committed: e.bytes_committed,
        latency: e.latency.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_commit_summarize() {
        let r = JobRegistry::new();
        assert_eq!(r.register(JobSpec::new("a", "mem://jobs/a").step_bytes(10)), 1);
        assert_eq!(r.register(JobSpec::new("b", "mem://jobs/b").step_bytes(5)), 1);
        assert!(r.record_commit("a", 100, 4096, Duration::from_millis(12)));
        assert!(r.record_commit("a", 110, 4096, Duration::from_millis(8)));
        assert!(!r.record_commit("ghost", 1, 1, Duration::ZERO));
        let s = r.summary("a").unwrap();
        assert_eq!(s.commits, 2);
        assert_eq!(s.last_step, Some(110));
        assert_eq!(s.bytes_committed, 8192);
        assert_eq!(s.latency.count, 2);
        assert_eq!(r.summaries().len(), 2);
        assert_eq!(r.total_step_bytes_except("a"), 5);
        assert_eq!(r.len_except("a"), 1);
    }

    #[test]
    fn reregistration_bumps_generation_and_keeps_history() {
        let r = JobRegistry::new();
        r.register(JobSpec::new("j", "mem://jobs/j"));
        r.record_commit("j", 50, 1000, Duration::from_millis(5));
        let gen = r.register(JobSpec::new("j", "mem://jobs/j"));
        assert_eq!(gen, 2);
        let s = r.summary("j").unwrap();
        assert_eq!(s.generation, 2);
        assert_eq!(s.commits, 1, "history survives re-registration");
        assert!(r.deregister("j"));
        assert!(!r.deregister("j"));
    }

    #[test]
    fn job_summary_serde_round_trip() {
        let r = JobRegistry::new();
        r.register(JobSpec::new("x", "mem://jobs/x"));
        r.record_commit("x", 3, 64, Duration::from_millis(2));
        let s = r.summary("x").unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: JobSummary = serde_json::from_str(&json).unwrap();
        // `registered_for_s` is a float measured at summarize time; compare
        // the rest exactly.
        assert_eq!(back.job_id, s.job_id);
        assert_eq!(back.commits, s.commits);
        assert_eq!(back.latency, s.latency);
    }
}
