//! The coordinator service: admission + registry + scheduler behind one
//! transport-agnostic `handle(Request) -> Response` entry point.

use crate::admission::{AdmissionOutcome, AdmissionPolicy};
use crate::registry::JobRegistry;
use crate::scheduler::{FairShareScheduler, SchedulerConfig};
use crate::wire::{Request, Response};
use bcp_storage::{DynBackend, DynGovernor, GovernedBackend};
use std::sync::Arc;
use std::time::Duration;

/// The checkpoint control plane for one storage domain: decides which jobs
/// may run, tracks their checkpoint traffic, and arbitrates the shared
/// storage bandwidth between them.
pub struct CoordinatorService {
    policy: AdmissionPolicy,
    registry: JobRegistry,
    scheduler: Arc<FairShareScheduler>,
}

impl CoordinatorService {
    /// A service enforcing `policy` over a scheduler with envelope `cfg`.
    pub fn new(policy: AdmissionPolicy, cfg: SchedulerConfig) -> Arc<CoordinatorService> {
        Arc::new(CoordinatorService {
            policy,
            registry: JobRegistry::new(),
            scheduler: Arc::new(FairShareScheduler::new(cfg)),
        })
    }

    /// A service with default policy and scheduler envelope.
    pub fn with_defaults() -> Arc<CoordinatorService> {
        CoordinatorService::new(AdmissionPolicy::default(), SchedulerConfig::default())
    }

    /// The registry (read-mostly introspection).
    pub fn registry(&self) -> &JobRegistry {
        &self.registry
    }

    /// The bandwidth scheduler, shared with governed backends.
    pub fn scheduler(&self) -> &Arc<FairShareScheduler> {
        &self.scheduler
    }

    /// The scheduler as a type-erased governor.
    pub fn governor(&self) -> DynGovernor {
        self.scheduler.clone()
    }

    /// Wrap `inner` so every byte `job` moves through it is paced by this
    /// service's fair-share scheduler.
    pub fn governed_backend(&self, job: &str, inner: DynBackend) -> DynBackend {
        Arc::new(GovernedBackend::new(inner, self.governor(), job))
    }

    /// Serve one request. Infallible by construction: every failure mode
    /// maps onto a typed [`Response`] variant.
    pub fn handle(&self, req: Request) -> Response {
        match req {
            Request::Register { spec } => {
                let outcome = self.policy.decide(
                    &spec,
                    self.registry.len_except(&spec.job_id),
                    self.registry.total_step_bytes_except(&spec.job_id),
                );
                if let AdmissionOutcome::Admitted { job_id, weight } = &outcome {
                    self.scheduler.set_weight(job_id, *weight);
                    self.registry.register(spec);
                }
                Response::Admission { outcome }
            }
            Request::Deregister { job_id } => {
                self.scheduler.remove_job(&job_id);
                if self.registry.deregister(&job_id) {
                    Response::Ok
                } else {
                    Response::Error { message: format!("unknown job {job_id:?}") }
                }
            }
            Request::ReportCommit { job_id, step, bytes, wall_ms } => {
                if self.registry.record_commit(&job_id, step, bytes, Duration::from_millis(wall_ms))
                {
                    Response::Ok
                } else {
                    Response::Error { message: format!("unknown job {job_id:?}") }
                }
            }
            Request::Jobs => Response::Jobs { jobs: self.registry.summaries() },
            Request::Status { job_id } => match self.registry.summary(&job_id) {
                Some(job) => Response::Status { job },
                None => Response::Error { message: format!("unknown job {job_id:?}") },
            },
            Request::Ping => Response::Ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_core::spec::JobSpec;

    fn svc(max_jobs: usize) -> Arc<CoordinatorService> {
        CoordinatorService::new(
            AdmissionPolicy { max_jobs, ..AdmissionPolicy::default() },
            SchedulerConfig::default(),
        )
    }

    #[test]
    fn register_report_status_deregister() {
        let s = svc(8);
        let resp = s.handle(Request::Register { spec: JobSpec::new("a", "mem://jobs/a") });
        let Response::Admission { outcome } = resp else { panic!("want Admission, got {resp:?}") };
        assert!(outcome.is_admitted());

        assert_eq!(
            s.handle(Request::ReportCommit { job_id: "a".into(), step: 9, bytes: 128, wall_ms: 3 }),
            Response::Ok
        );
        let Response::Status { job } = s.handle(Request::Status { job_id: "a".into() }) else {
            panic!("want Status")
        };
        assert_eq!(job.commits, 1);
        assert_eq!(job.last_step, Some(9));

        assert_eq!(s.handle(Request::Deregister { job_id: "a".into() }), Response::Ok);
        assert!(matches!(s.handle(Request::Status { job_id: "a".into() }), Response::Error { .. }));
    }

    #[test]
    fn admission_backpressure_surfaces_on_the_wire_type() {
        let s = svc(1);
        assert!(matches!(
            s.handle(Request::Register { spec: JobSpec::new("a", "mem://jobs/a") }),
            Response::Admission { outcome: AdmissionOutcome::Admitted { .. } }
        ));
        assert!(matches!(
            s.handle(Request::Register { spec: JobSpec::new("b", "mem://jobs/b") }),
            Response::Admission { outcome: AdmissionOutcome::Backpressure { .. } }
        ));
        // Re-registration of an existing id is not a new slot.
        assert!(matches!(
            s.handle(Request::Register { spec: JobSpec::new("a", "mem://jobs/a") }),
            Response::Admission { outcome: AdmissionOutcome::Admitted { .. } }
        ));
        let Response::Status { job } = s.handle(Request::Status { job_id: "a".into() }) else {
            panic!("want Status")
        };
        assert_eq!(job.generation, 2, "re-registration bumps the generation");
    }

    #[test]
    fn unknown_jobs_are_typed_errors() {
        let s = svc(8);
        assert!(matches!(
            s.handle(Request::ReportCommit {
                job_id: "nope".into(),
                step: 0,
                bytes: 0,
                wall_ms: 0
            }),
            Response::Error { .. }
        ));
        assert!(matches!(
            s.handle(Request::Deregister { job_id: "nope".into() }),
            Response::Error { .. }
        ));
        assert_eq!(s.handle(Request::Ping), Response::Ok);
    }
}
