//! # bcp-coordinator — the checkpoint control plane
//!
//! A long-running service arbitrating checkpoint traffic across many
//! concurrent training jobs sharing one storage domain, after
//! ByteCheckpoint's production deployment (NSDI '25 §3): checkpointing is
//! a *fleet* workload, and the storage bottleneck is shared.
//!
//! Pieces, composable without the daemon:
//!
//! * [`JobRegistry`] — which jobs exist, their [`bcp_core::spec::JobSpec`]s,
//!   and per-job commit telemetry ([`registry::JobSummary`]).
//! * [`AdmissionPolicy`] → [`AdmissionOutcome`] — typed admit / backpressure
//!   / reject decisions instead of silent queueing.
//! * [`FairShareScheduler`] — a global token bucket paced by a weighted
//!   start-time fair queue; implements [`bcp_storage::BandwidthGovernor`],
//!   so any job's backend is governed by wrapping it in
//!   [`bcp_storage::GovernedBackend`].
//! * [`CoordinatorService`] — the three above behind one
//!   `handle(Request) -> Response` entry point.
//! * [`CoordinatorServer`] / [`CoordinatorClient`] — JSON-lines-over-TCP
//!   front end (`bcpctl serve` / `bcpctl jobs` / `bcpctl status`).
//! * [`simjob::run_sim_job`] — full multi-rank [`bcp_core::spec::Session`]
//!   jobs driven through the governed path, for contention tests and
//!   `bench_coordinator`.

pub mod admission;
pub mod client;
pub mod registry;
pub mod scheduler;
pub mod server;
pub mod service;
pub mod simjob;
pub mod wire;

pub use admission::{AdmissionOutcome, AdmissionPolicy};
pub use client::CoordinatorClient;
pub use registry::{JobRegistry, JobSummary};
pub use scheduler::{FairShareScheduler, SchedulerConfig};
pub use server::CoordinatorServer;
pub use service::CoordinatorService;
pub use simjob::{run_sim_job, SimJobReport};
pub use wire::{Request, Response};
