//! Cross-job storage-bandwidth scheduling: a global token bucket paced by
//! a weighted start-time fair queue (SFQ).
//!
//! Every governed transfer is split into chunks; each chunk is tagged with
//! a virtual *finish time* of `start + chunk_bytes / weight` (fixed-point)
//! and admitted in finish-tag order as the token bucket refills. Two
//! properties follow:
//!
//! * **Weighted fairness** — backlogged jobs drain bandwidth proportional
//!   to their [`bcp_core::spec::JobQuota::weight`]; a job writing 100 MB
//!   steps cannot starve one writing 256 KB steps, because the small job's
//!   chunks carry earlier finish tags and interleave ahead of the large
//!   job's backlog.
//! * **Work conservation** — an idle job's share is redistributed: virtual
//!   time advances with the admitted chunks, so a job returning from idle
//!   starts at the current virtual time instead of claiming credit for its
//!   absence.
//!
//! The scheduler *is* a [`BandwidthGovernor`], so plugging it under a
//! job's storage backend is one [`bcp_storage::GovernedBackend`] away.

use bcp_storage::{BandwidthGovernor, OpClass};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Global bandwidth envelope the scheduler enforces.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Aggregate storage bandwidth in bytes/second shared by all jobs.
    pub rate_bps: u64,
    /// Token-bucket capacity: how many bytes may burst ahead of the rate.
    pub burst_bytes: u64,
    /// Admission granularity: transfers are split into chunks of at most
    /// this many bytes so large writes interleave with small ones.
    pub chunk_bytes: u64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            rate_bps: 256 * 1024 * 1024,
            burst_bytes: 8 * 1024 * 1024,
            chunk_bytes: 1024 * 1024,
        }
    }
}

/// Fixed-point shift for virtual time: tags are `bytes << TAG_SHIFT /
/// weight`, so integer division by small weights keeps sub-byte precision.
const TAG_SHIFT: u32 = 20;

#[derive(Debug, Default, Clone)]
struct JobSched {
    weight: u64,
    /// Finish tag of this job's most recently tagged chunk.
    last_finish: u128,
    /// Total bytes admitted for this job (fairness accounting).
    granted: u64,
}

struct SchedState {
    tokens: f64,
    last_refill: Instant,
    /// SFQ virtual time: the start tag of the most recently admitted chunk.
    virtual_time: u128,
    jobs: HashMap<String, JobSched>,
    /// Waiting chunks, ordered by (finish tag, sequence).
    queue: BTreeSet<(u128, u64)>,
    seq: u64,
}

/// The token-bucket + weighted-fair-queue bandwidth scheduler.
pub struct FairShareScheduler {
    cfg: SchedulerConfig,
    state: Mutex<SchedState>,
    admitted: Condvar,
}

impl FairShareScheduler {
    /// A scheduler enforcing `cfg`; jobs default to weight 1 until
    /// [`FairShareScheduler::set_weight`].
    pub fn new(cfg: SchedulerConfig) -> FairShareScheduler {
        FairShareScheduler {
            cfg,
            state: Mutex::new(SchedState {
                tokens: cfg.burst_bytes as f64,
                last_refill: Instant::now(),
                virtual_time: 0,
                jobs: HashMap::new(),
                queue: BTreeSet::new(),
                seq: 0,
            }),
            admitted: Condvar::new(),
        }
    }

    /// The enforced envelope.
    pub fn config(&self) -> SchedulerConfig {
        self.cfg
    }

    /// Set (or update) a job's fair-share weight; clamped to ≥ 1.
    pub fn set_weight(&self, job: &str, weight: u64) {
        let mut s = self.state.lock();
        s.jobs.entry(job.to_string()).or_default().weight = weight.max(1);
    }

    /// Forget a departed job's scheduling state. In-flight chunks keep
    /// their tags; new traffic under the same name re-registers at the
    /// current virtual time.
    pub fn remove_job(&self, job: &str) {
        let mut s = self.state.lock();
        s.jobs.remove(job);
    }

    /// Bytes admitted so far, per job — the fairness ledger.
    pub fn granted_bytes(&self) -> HashMap<String, u64> {
        let s = self.state.lock();
        s.jobs.iter().map(|(k, v)| (k.clone(), v.granted)).collect()
    }

    /// Fairness ratio over `granted_bytes` snapshots `before` → `after`:
    /// max over min of per-job (bytes moved / weight), restricted to
    /// `jobs`. Returns `None` when any listed job moved zero bytes (it
    /// starved — infinitely unfair).
    pub fn fairness_ratio(
        &self,
        before: &HashMap<String, u64>,
        after: &HashMap<String, u64>,
        jobs: &[(String, u64)],
    ) -> Option<f64> {
        let mut shares = Vec::new();
        for (job, weight) in jobs {
            let b = before.get(job).copied().unwrap_or(0);
            let a = after.get(job).copied().unwrap_or(0);
            let moved = a.saturating_sub(b);
            if moved == 0 {
                return None;
            }
            shares.push(moved as f64 / (*weight).max(1) as f64);
        }
        let max = shares.iter().cloned().fold(f64::MIN, f64::max);
        let min = shares.iter().cloned().fold(f64::MAX, f64::min);
        Some(max / min)
    }

    fn refill(&self, s: &mut SchedState) {
        let now = Instant::now();
        let dt = now.duration_since(s.last_refill).as_secs_f64();
        s.last_refill = now;
        s.tokens = (s.tokens + dt * self.cfg.rate_bps as f64).min(self.cfg.burst_bytes as f64);
    }

    /// Admit one tagged chunk: wait until it holds the minimum finish tag
    /// among all waiting chunks AND the bucket holds its bytes.
    fn admit_chunk(&self, job: &str, start_hint: Option<u128>, bytes: u64) -> u128 {
        let mut s = self.state.lock();
        let weight = s.jobs.get(job).map(|j| j.weight.max(1)).unwrap_or(1);
        // SFQ tagging: start at the later of the global virtual time and
        // this job's own last finish (per-job chunks stay ordered).
        let last_finish = s.jobs.get(job).map(|j| j.last_finish).unwrap_or(0);
        let start = s.virtual_time.max(last_finish).max(start_hint.unwrap_or(0));
        let finish = start + ((bytes as u128) << TAG_SHIFT) / weight as u128;
        {
            let entry = s.jobs.entry(job.to_string()).or_insert(JobSched {
                weight,
                last_finish: 0,
                granted: 0,
            });
            entry.last_finish = finish;
        }
        s.seq += 1;
        let ticket = (finish, s.seq);
        s.queue.insert(ticket);
        loop {
            self.refill(&mut s);
            let head = s.queue.iter().next().copied();
            if head == Some(ticket) && s.tokens >= bytes as f64 {
                s.tokens -= bytes as f64;
                s.virtual_time = s.virtual_time.max(start);
                s.queue.remove(&ticket);
                if let Some(j) = s.jobs.get_mut(job) {
                    j.granted += bytes;
                }
                self.admitted.notify_all();
                return finish;
            }
            // Wake when a chunk ahead of us is admitted, or after the time
            // it takes the bucket to refill this chunk — whichever first.
            let deficit = (bytes as f64 - s.tokens).max(0.0);
            let wait =
                Duration::from_secs_f64((deficit / self.cfg.rate_bps as f64).clamp(0.000_2, 0.05));
            self.admitted.wait_for(&mut s, wait);
        }
    }
}

impl BandwidthGovernor for FairShareScheduler {
    fn throttle(&self, job: &str, _op: OpClass, bytes: u64) {
        if bytes == 0 {
            return;
        }
        // Split into chunks so one large transfer interleaves with
        // competing small ones instead of monopolizing the bucket. Chunks
        // of one logical transfer chain their start hints so they keep
        // their relative order.
        let chunk = self.cfg.chunk_bytes.max(1).min(self.cfg.burst_bytes.max(1));
        let mut remaining = bytes;
        let mut hint = None;
        while remaining > 0 {
            let this = remaining.min(chunk);
            let finish = self.admit_chunk(job, hint, this);
            hint = Some(finish);
            remaining -= this;
        }
    }

    fn name(&self) -> &str {
        "fair-share"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn sched(rate_mbps: u64) -> Arc<FairShareScheduler> {
        Arc::new(FairShareScheduler::new(SchedulerConfig {
            rate_bps: rate_mbps * 1024 * 1024,
            burst_bytes: 256 * 1024,
            chunk_bytes: 64 * 1024,
        }))
    }

    #[test]
    fn zero_bytes_is_free() {
        let s = sched(1);
        s.throttle("j", OpClass::Write, 0);
        assert!(!s.granted_bytes().contains_key("j"));
    }

    #[test]
    fn rate_cap_paces_a_single_job() {
        let s = sched(8); // 8 MiB/s, burst 256 KiB
        s.set_weight("j", 1);
        let start = Instant::now();
        // 2 MiB beyond the burst → at least (2 MiB - 256 KiB) / 8 MiB/s.
        s.throttle("j", OpClass::Write, 2 * 1024 * 1024);
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(180), "unthrottled: {elapsed:?}");
        assert_eq!(s.granted_bytes()["j"], 2 * 1024 * 1024);
    }

    #[test]
    fn backlogged_jobs_share_by_weight() {
        let s = sched(16);
        s.set_weight("heavy", 1);
        s.set_weight("light", 1);
        let before = s.granted_bytes();
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for job in ["heavy", "light"] {
            let s = s.clone();
            let stop = stop.clone();
            // Heavy writes 1 MiB bursts, light writes 64 KiB bursts; both
            // stay backlogged for the window.
            let burst: u64 = if job == "heavy" { 1024 * 1024 } else { 64 * 1024 };
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.throttle(job, OpClass::Write, burst);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(600));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let after = s.granted_bytes();
        let ratio = s
            .fairness_ratio(&before, &after, &[("heavy".to_string(), 1), ("light".to_string(), 1)])
            .expect("neither job starved");
        assert!(ratio <= 3.0, "equal-weight jobs diverged: ratio {ratio:.2}");
    }

    #[test]
    fn weights_bias_the_split() {
        let s = sched(16);
        s.set_weight("big", 3);
        s.set_weight("small", 1);
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for job in ["big", "small"] {
            let s = s.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    s.throttle(job, OpClass::Write, 256 * 1024);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(600));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        let g = s.granted_bytes();
        let ratio = g["big"] as f64 / g["small"] as f64;
        assert!(ratio > 1.5 && ratio < 6.0, "3:1 weights should bias ~3:1, got {ratio:.2} ({g:?})");
    }
}
