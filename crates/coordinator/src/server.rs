//! TCP front-end for [`CoordinatorService`]: thread-per-connection,
//! JSON-lines framing, graceful shutdown.

use crate::service::CoordinatorService;
use crate::wire::{read_line, write_line, Request, Response};
use std::io::{self, BufReader, BufWriter, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running coordinator endpoint. Dropping the handle does NOT stop the
/// server; call [`CoordinatorServer::shutdown`].
pub struct CoordinatorServer {
    service: Arc<CoordinatorService>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CoordinatorServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` on a background accept loop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<CoordinatorService>,
    ) -> io::Result<CoordinatorServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = service.clone();
            let stop = stop.clone();
            std::thread::Builder::new().name("bcp-coordinator-accept".into()).spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let service = service.clone();
                    let _ = std::thread::Builder::new()
                        .name("bcp-coordinator-conn".into())
                        .spawn(move || serve_connection(stream, &service));
                }
            })?
        };
        Ok(CoordinatorServer { service, local_addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<CoordinatorService> {
        &self.service
    }

    /// Stop accepting connections and join the accept loop. Connections
    /// already in flight finish their current request and drain on EOF.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one client until EOF. A malformed line gets a typed
/// [`Response::Error`] and the connection stays usable.
fn serve_connection(stream: TcpStream, service: &CoordinatorService) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut r = BufReader::new(stream);
    let mut w = BufWriter::new(write_half);
    loop {
        let resp = match read_line::<Request>(&mut r) {
            Ok(Some(req)) => service.handle(req),
            Ok(None) => return, // clean EOF
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                Response::Error { message: format!("malformed request: {e}") }
            }
            Err(_) => return, // connection torn down
        };
        if write_line(&mut w, &resp).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn binds_ephemeral_port_and_shuts_down() {
        let server =
            CoordinatorServer::bind("127.0.0.1:0", CoordinatorService::with_defaults()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        // Raw socket: a ping line and a garbage line both get answers.
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = BufWriter::new(stream);
        write_line(&mut w, &Request::Ping).unwrap();
        assert_eq!(read_line::<Response>(&mut r).unwrap(), Some(Response::Ok));
        w.write_all(b"garbage\n").unwrap();
        w.flush().unwrap();
        assert!(matches!(read_line::<Response>(&mut r).unwrap(), Some(Response::Error { .. })));

        server.shutdown();
    }
}
