//! Simulated training jobs driven through the control plane: each job is a
//! full multi-rank [`Session`] world whose storage traffic flows through
//! the coordinator's fair-share governor. Used by the contention tests and
//! `bench_coordinator`.

use crate::service::CoordinatorService;
use crate::wire::{Request, Response};
use bcp_collectives::{Backend, CommWorld};
use bcp_core::registry::BackendRegistry;
use bcp_core::spec::{JobSpec, Session};
use bcp_core::{BcpError, Result};
use bcp_model::states::build_train_state;
use bcp_model::{TrainerConfig, TransformerConfig};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, MemoryBackend};
use std::sync::Arc;
use std::time::Instant;

/// What one simulated job observed end to end.
#[derive(Debug, Clone)]
pub struct SimJobReport {
    /// The job id the report describes.
    pub job_id: String,
    /// Steps committed (each one a full save → commit round).
    pub steps: u64,
    /// Bytes the engine reported persisted across all steps.
    pub bytes: u64,
    /// Per-step commit wall times in milliseconds, in step order.
    pub commit_ms: Vec<f64>,
}

/// Drive `steps` train → save rounds of `spec`'s world against `service`,
/// with every byte paced by the service's scheduler. The caller must have
/// registered the job (admission is the caller's story); commits are
/// reported back to the service so `bcpctl status` sees the traffic.
///
/// Each job gets its own private in-memory store wrapped in the service's
/// [`bcp_storage::GovernedBackend`] — jobs contend on bandwidth, not data.
pub fn run_sim_job(
    service: &Arc<CoordinatorService>,
    spec: &JobSpec,
    model: &TransformerConfig,
    steps: u64,
) -> Result<SimJobReport> {
    let inner: DynBackend = Arc::new(MemoryBackend::new());
    let governed = service.governed_backend(&spec.job_id, inner);
    let mut reg = BackendRegistry::new();
    reg.register(Scheme::Memory, governed);
    let registry = Arc::new(reg);

    let world_size = spec.world_size();
    let world = CommWorld::new(world_size, Backend::Flat);
    let handles: Vec<_> = (0..world_size)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let spec = spec.clone();
            let model = model.clone();
            let service = service.clone();
            std::thread::spawn(move || -> Result<(u64, Vec<f64>)> {
                let comm = world.communicator(rank)?;
                let session = Session::open(spec.clone(), comm, registry)?;
                let mut state =
                    build_train_state(&model, spec.framework, spec.parallelism, rank, true);
                let trainer = TrainerConfig::default();
                let mut bytes = 0u64;
                let mut commit_ms = Vec::with_capacity(steps as usize);
                for step in 1..=steps {
                    trainer.run(&mut state, step - 1, 1);
                    let begin = Instant::now();
                    let stats = session.save_step(&state, step)?.wait()?;
                    let wall = begin.elapsed();
                    bytes += stats.bytes;
                    commit_ms.push(wall.as_secs_f64() * 1e3);
                    if rank == 0 {
                        let resp = service.handle(Request::ReportCommit {
                            job_id: spec.job_id.clone(),
                            step,
                            bytes: stats.bytes,
                            wall_ms: wall.as_millis() as u64,
                        });
                        if let Response::Error { message } = resp {
                            return Err(BcpError::Plan(format!(
                                "commit report refused: {message}"
                            )));
                        }
                    }
                }
                Ok((bytes, commit_ms))
            })
        })
        .collect();

    let mut total_bytes = 0u64;
    let mut commit_ms = Vec::new();
    for h in handles {
        let (bytes, ms) =
            h.join().map_err(|_| BcpError::Plan("sim job rank panicked".into()))??;
        total_bytes += bytes;
        // Rank threads see the same commits; keep the slowest observation
        // per step (the commit is not done until every rank is done).
        if commit_ms.is_empty() {
            commit_ms = ms;
        } else {
            for (slot, v) in commit_ms.iter_mut().zip(ms) {
                *slot = slot.max(v);
            }
        }
    }
    Ok(SimJobReport { job_id: spec.job_id.clone(), steps, bytes: total_bytes, commit_ms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::scheduler::SchedulerConfig;
    use bcp_model::zoo;

    #[test]
    fn sim_job_commits_and_reports() {
        let service = CoordinatorService::new(
            AdmissionPolicy::default(),
            // Wide-open envelope: this test checks plumbing, not pacing.
            SchedulerConfig { rate_bps: u64::MAX / 4, ..SchedulerConfig::default() },
        );
        let spec = JobSpec::new("sim", "mem://jobs/sim");
        let Response::Admission { outcome } =
            service.handle(Request::Register { spec: spec.clone() })
        else {
            panic!("want Admission")
        };
        assert!(outcome.is_admitted());

        let report = run_sim_job(&service, &spec, &zoo::tiny_gpt(), 2).unwrap();
        assert_eq!(report.steps, 2);
        assert!(report.bytes > 0);
        assert_eq!(report.commit_ms.len(), 2);

        let summary = service.registry().summary("sim").unwrap();
        assert_eq!(summary.commits, 2);
        assert_eq!(summary.last_step, Some(2));
        assert!(service.scheduler().granted_bytes()["sim"] > 0, "traffic was governed");
    }
}
