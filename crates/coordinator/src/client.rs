//! Typed TCP client for the coordinator wire protocol.

use crate::admission::AdmissionOutcome;
use crate::registry::JobSummary;
use crate::wire::{read_line, write_line, Request, Response};
use bcp_core::spec::JobSpec;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running coordinator.
pub struct CoordinatorClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn proto_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl CoordinatorClient {
    /// Connect to a coordinator at `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<CoordinatorClient> {
        let stream = TcpStream::connect(addr)?;
        let write_half = stream.try_clone()?;
        Ok(CoordinatorClient { reader: BufReader::new(stream), writer: BufWriter::new(write_half) })
    }

    /// One raw request/response exchange.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        write_line(&mut self.writer, req)?;
        read_line(&mut self.reader)?
            .ok_or_else(|| proto_err("coordinator closed the connection".into()))
    }

    /// Register (or re-register) `spec`; the typed admission decision.
    pub fn register(&mut self, spec: JobSpec) -> io::Result<AdmissionOutcome> {
        match self.request(&Request::Register { spec })? {
            Response::Admission { outcome } => Ok(outcome),
            other => Err(proto_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Remove `job_id` from the control plane.
    pub fn deregister(&mut self, job_id: &str) -> io::Result<()> {
        match self.request(&Request::Deregister { job_id: job_id.into() })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Report one committed step.
    pub fn report_commit(
        &mut self,
        job_id: &str,
        step: u64,
        bytes: u64,
        wall_ms: u64,
    ) -> io::Result<()> {
        match self.request(&Request::ReportCommit {
            job_id: job_id.into(),
            step,
            bytes,
            wall_ms,
        })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected response {other:?}"))),
        }
    }

    /// All registered jobs, sorted by id.
    pub fn jobs(&mut self) -> io::Result<Vec<JobSummary>> {
        match self.request(&Request::Jobs)? {
            Response::Jobs { jobs } => Ok(jobs),
            other => Err(proto_err(format!("unexpected response {other:?}"))),
        }
    }

    /// One job's status.
    pub fn status(&mut self, job_id: &str) -> io::Result<JobSummary> {
        match self.request(&Request::Status { job_id: job_id.into() })? {
            Response::Status { job } => Ok(job),
            Response::Error { message } => Err(proto_err(message)),
            other => Err(proto_err(format!("unexpected response {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.request(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(proto_err(format!("unexpected response {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CoordinatorServer;
    use crate::service::CoordinatorService;

    #[test]
    fn typed_round_trip_over_tcp() {
        let server =
            CoordinatorServer::bind("127.0.0.1:0", CoordinatorService::with_defaults()).unwrap();
        let mut c = CoordinatorClient::connect(server.local_addr()).unwrap();

        c.ping().unwrap();
        assert!(c
            .register(JobSpec::new("wt", "mem://jobs/wt").step_bytes(64))
            .unwrap()
            .is_admitted());
        c.report_commit("wt", 5, 64, 2).unwrap();
        let job = c.status("wt").unwrap();
        assert_eq!(job.commits, 1);
        assert_eq!(c.jobs().unwrap().len(), 1);
        c.deregister("wt").unwrap();
        assert!(c.status("wt").is_err(), "deregistered job is gone");

        server.shutdown();
    }
}
