//! The coordinator wire protocol: JSON-lines over any `Read`/`Write`
//! transport (one serialized [`Request`] or [`Response`] per line).
//!
//! Kept deliberately transport-dumb — framing is `\n`, encoding is JSON —
//! so `nc` against a running `bcpctl serve` works for debugging.

use crate::admission::AdmissionOutcome;
use crate::registry::JobSummary;
use bcp_core::spec::JobSpec;
use serde::{Deserialize, Serialize};
use std::io::{self, BufRead, Write};

/// Client → coordinator messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register (or re-register after a crash) a job.
    Register {
        /// The job to admit.
        spec: JobSpec,
    },
    /// Remove a job from the registry and scheduler.
    Deregister {
        /// The departing job.
        job_id: String,
    },
    /// Report one committed checkpoint step.
    ReportCommit {
        /// The reporting job.
        job_id: String,
        /// The committed global step.
        step: u64,
        /// Bytes the step persisted.
        bytes: u64,
        /// End-to-end commit wall time in milliseconds.
        wall_ms: u64,
    },
    /// List all registered jobs.
    Jobs,
    /// One job's status.
    Status {
        /// The job to describe.
        job_id: String,
    },
    /// Liveness probe.
    Ping,
}

/// Coordinator → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Register`].
    Admission {
        /// The typed admission decision.
        outcome: AdmissionOutcome,
    },
    /// Generic success (deregister, report, ping).
    Ok,
    /// Answer to [`Request::Jobs`].
    Jobs {
        /// All registered jobs, sorted by id.
        jobs: Vec<JobSummary>,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// The requested job.
        job: JobSummary,
    },
    /// The request could not be served (unknown job, malformed line).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Serialize `msg` as one JSON line onto `w` and flush.
pub fn write_line<T: Serialize>(w: &mut impl Write, msg: &T) -> io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    w.write_all(json.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Read one JSON line from `r`. `Ok(None)` = clean EOF;
/// `Err(InvalidData)` = a line that is not valid `T`.
pub fn read_line<T: for<'de> Deserialize<'de>>(r: &mut impl BufRead) -> io::Result<Option<T>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    serde_json::from_str(trimmed)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_serde_round_trips() {
        let reqs = vec![
            Request::Register { spec: JobSpec::new("j1", "mem://jobs/j1") },
            Request::Deregister { job_id: "j1".into() },
            Request::ReportCommit { job_id: "j1".into(), step: 7, bytes: 1024, wall_ms: 12 },
            Request::Jobs,
            Request::Status { job_id: "j1".into() },
            Request::Ping,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn line_framing_round_trips_a_conversation() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Ping).unwrap();
        write_line(&mut buf, &Request::Jobs).unwrap();
        let mut r = BufReader::new(&buf[..]);
        assert_eq!(read_line::<Request>(&mut r).unwrap(), Some(Request::Ping));
        assert_eq!(read_line::<Request>(&mut r).unwrap(), Some(Request::Jobs));
        assert_eq!(read_line::<Request>(&mut r).unwrap(), None, "EOF");
    }

    #[test]
    fn malformed_lines_are_invalid_data() {
        let mut r = BufReader::new(&b"not json\n"[..]);
        let err = read_line::<Request>(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
