//! Cross-job bandwidth fairness, end to end: real multi-rank `Session`
//! jobs writing real checkpoints through the coordinator's governed
//! storage path, contending inside one shared bandwidth envelope.

use bcp_coordinator::{
    run_sim_job, AdmissionPolicy, CoordinatorService, Request, Response, SchedulerConfig,
};
use bcp_core::spec::{JobQuota, JobSpec};
use bcp_model::zoo::{tiny_gpt, tiny_gpt_8l};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn register(service: &Arc<CoordinatorService>, spec: &JobSpec) {
    let Response::Admission { outcome } = service.handle(Request::Register { spec: spec.clone() })
    else {
        panic!("want Admission")
    };
    assert!(outcome.is_admitted(), "{outcome:?}");
}

/// Four identical jobs contending in one envelope drain within a 3×
/// fairness band, and none starves.
#[test]
fn identical_jobs_share_the_envelope_fairly() {
    let service = CoordinatorService::new(
        AdmissionPolicy::default(),
        // Tight envelope so the jobs are bandwidth-bound, not compute-bound.
        SchedulerConfig {
            rate_bps: 24 * 1024 * 1024,
            burst_bytes: 256 * 1024,
            chunk_bytes: 64 * 1024,
        },
    );
    let jobs: Vec<JobSpec> =
        (0..4).map(|i| JobSpec::new(format!("fair-{i}"), format!("mem://jobs/fair-{i}"))).collect();
    for spec in &jobs {
        register(&service, spec);
    }

    let handles: Vec<_> = jobs
        .iter()
        .map(|spec| {
            let service = service.clone();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let begin = Instant::now();
                let report = run_sim_job(&service, &spec, &tiny_gpt_8l(), 6).unwrap();
                (report, begin.elapsed())
            })
        })
        .collect();

    let mut reports = Vec::new();
    for h in handles {
        reports.push(h.join().unwrap());
    }

    // Zero starved jobs: every job committed every step.
    for (report, _) in &reports {
        assert_eq!(report.steps, 6, "{} starved", report.job_id);
        assert!(report.bytes > 0);
    }

    // Fairness: identical equal-weight jobs finish within a 3× band.
    let times: Vec<f64> = reports.iter().map(|(_, t)| t.as_secs_f64()).collect();
    let max = times.iter().cloned().fold(f64::MIN, f64::max);
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min <= 3.0,
        "identical jobs diverged: completion times {times:?} (ratio {:.2})",
        max / min
    );

    // The governed ledger saw equal work from equal jobs.
    let granted = service.scheduler().granted_bytes();
    for (report, _) in &reports {
        assert_eq!(
            granted[&report.job_id], granted[&reports[0].0.job_id],
            "equal jobs moved equal bytes"
        );
    }
}

/// A job writing big steps cannot starve a job writing small steps: the
/// small job's chunks carry earlier finish tags and interleave ahead of
/// the big job's backlog, so it finishes while the big job is still busy.
#[test]
fn big_job_cannot_starve_small_job() {
    let service = CoordinatorService::new(
        AdmissionPolicy::default(),
        SchedulerConfig {
            rate_bps: 16 * 1024 * 1024,
            burst_bytes: 256 * 1024,
            chunk_bytes: 64 * 1024,
        },
    );
    let big =
        JobSpec::new("big", "mem://jobs/big").quota(JobQuota { weight: 1, ..JobQuota::default() });
    let small = JobSpec::new("small", "mem://jobs/small")
        .quota(JobQuota { weight: 1, ..JobQuota::default() });
    register(&service, &big);
    register(&service, &small);

    let big_handle = {
        let service = service.clone();
        let big = big.clone();
        std::thread::spawn(move || {
            let begin = Instant::now();
            let report = run_sim_job(&service, &big, &tiny_gpt_8l(), 12).unwrap();
            (report, begin.elapsed())
        })
    };
    // Let the big job build a backlog before the small job shows up.
    std::thread::sleep(Duration::from_millis(200));
    let small_begin = Instant::now();
    let small_report = run_sim_job(&service, &small, &tiny_gpt(), 6).unwrap();
    let small_elapsed = small_begin.elapsed();
    let (big_report, big_elapsed) = big_handle.join().unwrap();

    assert_eq!(small_report.steps, 6, "small job starved");
    assert_eq!(big_report.steps, 12);
    // Starvation check: the small job (~1/16 the big job's bytes) must not
    // be serialized behind the big job's whole backlog.
    assert!(
        small_elapsed < big_elapsed,
        "small job ({small_elapsed:?}) should finish while the big job ({big_elapsed:?}) runs"
    );
    let worst_commit_ms = small_report.commit_ms.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        worst_commit_ms < 2_000.0,
        "a small commit waited {worst_commit_ms:.0} ms behind the big job"
    );
}
