//! Session lifecycle through the control plane: register → save → crash →
//! re-register → `load_latest` resumes exactly where the job died, with
//! the registry lineage (generation, commit history) intact.

use bcp_collectives::{Backend, CommWorld};
use bcp_coordinator::{CoordinatorService, Request, Response};
use bcp_core::registry::BackendRegistry;
use bcp_core::spec::{JobSpec, Session};
use bcp_model::states::build_train_state;
use bcp_model::zoo::tiny_gpt;
use bcp_model::{TrainState, TrainerConfig};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, MemoryBackend};
use bcp_topology::Parallelism;
use std::sync::Arc;

const WORLD: usize = 2;

fn spec() -> JobSpec {
    JobSpec::new("llm", "mem://jobs/llm").parallelism(Parallelism { tp: 1, dp: WORLD, pp: 1 })
}

/// Registry whose memory scheme routes through the service's governor and
/// down to `store` — the persistent fixture that survives a "crash".
fn governed_registry(
    service: &Arc<CoordinatorService>,
    store: &DynBackend,
) -> Arc<BackendRegistry> {
    let mut reg = BackendRegistry::new();
    reg.register(Scheme::Memory, service.governed_backend("llm", store.clone()));
    Arc::new(reg)
}

fn reference_state(rank: usize, steps: u64) -> TrainState {
    let mut s = build_train_state(&tiny_gpt(), spec().framework, spec().parallelism, rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

fn register(service: &Arc<CoordinatorService>) {
    let Response::Admission { outcome } = service.handle(Request::Register { spec: spec() }) else {
        panic!("want Admission")
    };
    assert!(outcome.is_admitted(), "{outcome:?}");
}

#[test]
fn crash_reregister_resume() {
    let service = CoordinatorService::with_defaults();
    let store: DynBackend = Arc::new(MemoryBackend::new());

    // Incarnation 1: admitted, trains to step 3 saving each step, then
    // "crashes" (sessions drop without deregistering).
    register(&service);
    {
        let registry = governed_registry(&service, &store);
        let world = CommWorld::new(WORLD, Backend::Flat);
        let handles: Vec<_> = (0..WORLD)
            .map(|rank| {
                let world = world.clone();
                let registry = registry.clone();
                let service = service.clone();
                std::thread::spawn(move || {
                    let session =
                        Session::open(spec(), world.communicator(rank).unwrap(), registry).unwrap();
                    let mut state = build_train_state(
                        &tiny_gpt(),
                        spec().framework,
                        spec().parallelism,
                        rank,
                        true,
                    );
                    for step in 1..=3u64 {
                        TrainerConfig::default().run(&mut state, step - 1, 1);
                        let stats = session.save_step(&state, step).unwrap().wait().unwrap();
                        if rank == 0 {
                            let resp = service.handle(Request::ReportCommit {
                                job_id: "llm".into(),
                                step,
                                bytes: stats.bytes,
                                wall_ms: 1,
                            });
                            assert_eq!(resp, Response::Ok);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    // The control plane still lists the job; the crash lost the workers,
    // not the registration.
    let before = service.registry().summary("llm").unwrap();
    assert_eq!(before.generation, 1);
    assert_eq!(before.commits, 3);

    // Incarnation 2: re-register (generation bumps, history survives),
    // open fresh sessions against the surviving store, resume.
    register(&service);
    let after = service.registry().summary("llm").unwrap();
    assert_eq!(after.generation, 2, "re-registration is a new incarnation");
    assert_eq!(after.commits, 3, "commit lineage survives the crash");

    let registry = governed_registry(&service, &store);
    let world = CommWorld::new(WORLD, Backend::Flat);
    let handles: Vec<_> = (0..WORLD)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            std::thread::spawn(move || {
                let session =
                    Session::open(spec(), world.communicator(rank).unwrap(), registry).unwrap();
                let mut state = build_train_state(
                    &tiny_gpt(),
                    spec().framework,
                    spec().parallelism,
                    rank,
                    true,
                );
                let outcome = session
                    .load_latest(&mut state)
                    .unwrap()
                    .expect("a committed step exists to resume from");
                assert_eq!(outcome.report.metadata.step, 3, "resumes from the newest commit");
                assert!(outcome.quarantined.is_empty());

                // Bitwise identical to the deterministic reference at step 3.
                let want = reference_state(rank, 3);
                for (fqn, w) in &want.model.entries {
                    let g =
                        state.model.get(fqn).unwrap_or_else(|| panic!("rank {rank} missing {fqn}"));
                    assert!(g.tensor.bitwise_eq(&w.tensor), "rank {rank} {fqn} diverged");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Clean exit this time.
    assert_eq!(service.handle(Request::Deregister { job_id: "llm".into() }), Response::Ok);
    assert!(service.registry().is_empty());
}
