//! Offline checkpoint resharding jobs (Table 1, Appendix A).
//!
//! Before load-time resharding, production submitted *independent jobs* that
//! "download checkpoints from the storage systems, reshard distributed
//! checkpoints to given parallelism configurations and upload new
//! checkpoints back to the storage systems" — blocking the target training
//! or evaluation job until done, and leaving behind parallelism-coupled
//! copies that cannot be reused.

use bcp_core::engine::iopool::IoPool;
use bcp_core::engine::pool::PinnedPool;
use bcp_core::engine::save::{execute_save, SaveConfig};
use bcp_core::export::consolidate_tensor;
use bcp_core::integrity::{commit_checkpoint, FailureLog};
use bcp_core::metadata::{GlobalMetadata, METADATA_FILE};
use bcp_core::plan::{build_tensor_map, local_save_plan};
use bcp_core::{BcpError, Result};
use bcp_model::states::{build_train_state, Framework, TrainState};
use bcp_model::TransformerConfig;
use bcp_monitor::{MetricsSink, SpanContext};
use bcp_storage::DynBackend;
use bcp_tensor::Tensor;
use bcp_topology::{Parallelism, ShardSpec};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Timing/volume report of one offline resharding job.
#[derive(Debug, Clone)]
pub struct OfflineJobReport {
    /// Bytes downloaded from storage (the whole source checkpoint).
    pub downloaded: u64,
    /// Bytes uploaded back (the whole target checkpoint).
    pub uploaded: u64,
    /// Wall-clock of the download + reshard phase.
    pub reshard_time: Duration,
    /// Wall-clock of the upload phase.
    pub upload_time: Duration,
    /// Number of target ranks produced.
    pub target_ranks: usize,
}

/// Run an offline resharding job in this process: read the checkpoint at
/// `src_prefix`, reshape it to `(target_fw, target_par)`, and write a new
/// checkpoint at `dst_prefix`.
pub fn run_offline_reshard_job(
    backend: &DynBackend,
    src_prefix: &str,
    dst_prefix: &str,
    arch: &TransformerConfig,
    target_fw: Framework,
    target_par: Parallelism,
) -> Result<OfflineJobReport> {
    let t0 = Instant::now();
    let meta_bytes = backend.read(&format!("{src_prefix}/{METADATA_FILE}"))?;
    let meta = GlobalMetadata::from_bytes(&meta_bytes).map_err(BcpError::Corrupt)?;
    let downloaded = meta.total_tensor_bytes() + meta_bytes.len() as u64;

    // Download + consolidate every tensor once (the job holds everything in
    // one process — the reason these jobs need big machines).
    let mut full: HashMap<String, Tensor> = HashMap::new();
    for fqn in meta.tensor_map.keys() {
        full.insert(fqn.clone(), consolidate_tensor(backend, src_prefix, &meta, fqn)?);
    }

    // Build every target rank's state from the consolidated tensors.
    let world = target_par.world_size();
    let mut states: Vec<TrainState> = Vec::with_capacity(world);
    for rank in 0..world {
        let mut state = build_train_state(arch, target_fw, target_par, rank, true);
        for dict in [&mut state.model, &mut state.optimizer] {
            for entry in dict.entries.values_mut() {
                let source = full.get(&entry.fqn).ok_or_else(|| {
                    BcpError::Missing(format!("{} absent from source checkpoint", entry.fqn))
                })?;
                entry.tensor = slice_for_spec(source, &entry.spec, &entry.global_shape)?;
            }
        }
        states.push(state);
    }
    let reshard_time = t0.elapsed();

    // Upload the new, parallelism-coupled checkpoint.
    let t1 = Instant::now();
    let pool = PinnedPool::new(2);
    let io = IoPool::new(1);
    let sink = MetricsSink::disabled();
    let log = Arc::new(FailureLog::new());
    let cfg = SaveConfig { async_upload: false, ..Default::default() };
    let mut plans = Vec::with_capacity(world);
    let mut uploaded = 0u64;
    for (rank, state) in states.iter().enumerate() {
        let plan = local_save_plan(rank, state, "offline-job");
        uploaded += plan.total_bytes();
        let faults = bcp_core::fault::FaultHook::inert(rank);
        execute_save(
            &plan,
            state,
            backend.clone(),
            dst_prefix,
            &pool,
            &io,
            &sink,
            log.clone(),
            &cfg,
            meta.step,
            &faults,
            SpanContext::none(),
        )?
        .wait()?;
        plans.push(plan);
    }
    let mut new_meta =
        GlobalMetadata::new(target_fw.name(), meta.step, &target_par.describe(), world);
    new_meta.tensor_map = build_tensor_map(&plans);
    backend
        .write(&format!("{dst_prefix}/{METADATA_FILE}"), bytes::Bytes::from(new_meta.to_bytes()))?;
    commit_checkpoint(backend, dst_prefix)?;
    let upload_time = t1.elapsed();
    Ok(OfflineJobReport { downloaded, uploaded, reshard_time, upload_time, target_ranks: world })
}

/// Slice a full tensor down to a local shard per spec.
fn slice_for_spec(full: &Tensor, spec: &ShardSpec, global_shape: &[usize]) -> Result<Tensor> {
    match spec {
        ShardSpec::Flat { offset, length } => {
            Ok(full.flatten().slice_flat(*offset, *length).map_err(BcpError::Tensor)?)
        }
        ShardSpec::FlatOfBox { box_offsets, box_lengths, offset, length } => {
            let sub = full.extract_box(box_offsets, box_lengths).map_err(BcpError::Tensor)?;
            Ok(sub.flatten().slice_flat(*offset, *length).map_err(BcpError::Tensor)?)
        }
        _ => {
            let (o, l) = spec.grid_box(global_shape).map_err(|e| BcpError::Plan(e.to_string()))?;
            Ok(full.extract_box(&o, &l).map_err(BcpError::Tensor)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_core::plan::local_save_plan as lsp;
    use bcp_model::{zoo, TrainerConfig};
    use bcp_storage::MemoryBackend;

    /// Save a source checkpoint directly (single process, all ranks).
    fn save_source(
        backend: &DynBackend,
        prefix: &str,
        arch: &TransformerConfig,
        fw: Framework,
        par: Parallelism,
        steps: u64,
    ) {
        let pool = PinnedPool::new(2);
        let io = IoPool::new(1);
        let sink = MetricsSink::disabled();
        let log = Arc::new(FailureLog::new());
        let cfg = SaveConfig { async_upload: false, ..Default::default() };
        let mut plans = Vec::new();
        for rank in 0..par.world_size() {
            let mut state = build_train_state(arch, fw, par, rank, true);
            TrainerConfig::default().run(&mut state, 0, steps);
            let plan = lsp(rank, &state, "cpu");
            let faults = bcp_core::fault::FaultHook::inert(rank);
            execute_save(
                &plan,
                &state,
                backend.clone(),
                prefix,
                &pool,
                &io,
                &sink,
                log.clone(),
                &cfg,
                steps,
                &faults,
                SpanContext::none(),
            )
            .unwrap()
            .wait()
            .unwrap();
            plans.push(plan);
        }
        let mut meta = GlobalMetadata::new(fw.name(), steps, &par.describe(), par.world_size());
        meta.tensor_map = build_tensor_map(&plans);
        backend
            .write(&format!("{prefix}/{METADATA_FILE}"), bytes::Bytes::from(meta.to_bytes()))
            .unwrap();
        commit_checkpoint(backend, prefix).unwrap();
    }

    #[test]
    fn offline_job_produces_bitwise_correct_target_checkpoint() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let arch = zoo::tiny_gpt();
        let src_fw = Framework::Megatron { distributed_optimizer: false };
        let src_par = Parallelism::new(2, 1, 2).unwrap();
        save_source(&backend, "src", &arch, src_fw, src_par, 2);

        let dst_fw = Framework::Fsdp { zero3: true };
        let dst_par = Parallelism::data_parallel(2).unwrap();
        let report =
            run_offline_reshard_job(&backend, "src", "dst", &arch, dst_fw, dst_par).unwrap();
        assert_eq!(report.target_ranks, 2);
        assert!(report.downloaded > 0 && report.uploaded > 0);

        // The new checkpoint's tensors match the reference evolution.
        let meta_bytes = backend.read("dst/global_metadata.json").unwrap();
        let meta = GlobalMetadata::from_bytes(&meta_bytes).unwrap();
        meta.validate().unwrap();
        let reference = {
            let mut s = build_train_state(
                &arch,
                Framework::Ddp,
                Parallelism::data_parallel(1).unwrap(),
                0,
                true,
            );
            TrainerConfig::default().run(&mut s, 0, 2);
            s
        };
        for fqn in ["layers.0.attn.qkv.weight", "embedding.word.weight"] {
            let got = consolidate_tensor(&backend, "dst", &meta, fqn).unwrap();
            let want = &reference.model.get(fqn).unwrap().tensor;
            assert!(got.bitwise_eq(want), "{fqn}");
        }
        // And the duplication cost the paper criticizes: the storage now
        // holds two copies of the logical state.
        let src_meta =
            GlobalMetadata::from_bytes(&backend.read("src/global_metadata.json").unwrap()).unwrap();
        assert!(meta.total_tensor_bytes() > 0);
        assert!(src_meta.total_tensor_bytes() > 0);
    }
}
