//! # bcp-baselines — the systems ByteCheckpoint is compared against
//!
//! Faithful-behaviour reimplementations of the paper's baselines, built on
//! the same substrates so the comparison isolates the *design* differences:
//!
//! * [`dcp`] — PyTorch DCP-like checkpointing for FSDP: synchronous
//!   all-gather + interleaved D2H to regularize irregular tensors before
//!   saving (§3.2: the approach ByteCheckpoint's decomposition replaces),
//!   first-DP-group deduplication, no plan cache, no redundant-read
//!   elimination, single-threaded file I/O.
//! * [`mcp`] — Megatron Distributed Checkpoint-like: saves sharded states
//!   without the all-gather pathology but keeps the unbalanced dedup,
//!   per-save replanning, and unoptimized load path.
//! * [`offline`] — the offline resharding *job* (Table 1 / Appendix A):
//!   download every file, reshard in one process, upload a new checkpoint —
//!   what production ran before load-time resharding existed.

pub mod dcp;
pub mod mcp;
pub mod offline;

pub use dcp::DcpLike;
pub use mcp::McpLike;
pub use offline::run_offline_reshard_job;

use bcp_core::engine::load::LoadConfig;
use bcp_core::engine::save::SaveConfig;
use bcp_core::fault::FaultPlan;
use bcp_core::integrity::RetryPolicy;
use bcp_core::planner::balance::DedupStrategy;
use bcp_core::workflow::WorkflowOptions;

/// Workflow options shared by both baselines: everything ByteCheckpoint
/// optimizes is turned off (asynchronous *upload* stays on — "both baselines
/// support asynchronous checkpointing").
pub fn baseline_workflow_options() -> WorkflowOptions {
    WorkflowOptions {
        dedup: DedupStrategy::FirstReplica,
        save: SaveConfig {
            io_threads: 1,
            split_threshold: u64::MAX, // no split-file upload
            split_parts: 1,
            async_upload: true,
            retries: RetryPolicy::default(),
        },
        load: LoadConfig {
            io_threads: 1,
            chunk_bytes: u64::MAX, // no multi-threaded ranged reads
            overlap: false,        // serial read → assemble → all-to-all
            retries: RetryPolicy::default(),
        },
        plan_cache: false,  // replan on every save
        dedup_reads: false, // every DP replica reads everything
        faults: FaultPlan::new(),
        verified_fallback: false, // baselines load whatever is newest
        hot: bcp_core::HotTierConfig::default(), // no hot tier in baselines
    }
}
