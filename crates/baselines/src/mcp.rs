//! MCP-like checkpointing (Megatron Distributed Checkpoint, the paper's
//! Megatron-LM baseline).
//!
//! MCP "builds upon the workflow of DCP" for Megatron states: it stores
//! sharded tensors directly (no all-gather pathology), but keeps the
//! first-DP-group deduplication, replans on every save, and loads without
//! redundancy elimination or ranged multi-threaded reads.

use crate::baseline_workflow_options;
use bcp_collectives::Communicator;
use bcp_core::api::{LoadOutcome, LoadRequest, SaveRequest};
use bcp_core::engine::iopool::IoPool;
use bcp_core::engine::pool::PinnedPool;
use bcp_core::integrity::FailureLog;
use bcp_core::planner::cache::PlanCache;
use bcp_core::registry::BackendRegistry;
use bcp_core::workflow::{load_checkpoint, save_checkpoint, JobContext, SaveArgs, SaveTicket};
use bcp_core::{BcpError, Result};
use bcp_model::Framework;
use bcp_monitor::MetricsSink;
use std::sync::Arc;

/// An MCP-like checkpointer for Megatron-LM jobs.
pub struct McpLike {
    ctx: JobContext,
    registry: Arc<BackendRegistry>,
    sink: MetricsSink,
    cache: PlanCache,
    pool: Arc<PinnedPool>,
    io: Arc<IoPool>,
    failures: Arc<FailureLog>,
}

impl McpLike {
    /// Build an MCP-like checkpointer. The framework must be Megatron-LM.
    pub fn new(
        comm: Communicator,
        framework: Framework,
        parallelism: bcp_topology::Parallelism,
        registry: Arc<BackendRegistry>,
        sink: MetricsSink,
    ) -> Result<McpLike> {
        if !matches!(framework, Framework::Megatron { .. }) {
            return Err(BcpError::Plan("MCP baseline supports Megatron-LM only".into()));
        }
        Ok(McpLike {
            ctx: JobContext { comm, framework, parallelism },
            registry,
            sink,
            cache: PlanCache::new(),
            pool: PinnedPool::new(2),
            io: IoPool::new(1), // single-threaded file I/O, like MCP
            failures: Arc::new(FailureLog::new()),
        })
    }

    /// Save with MCP semantics (baseline workflow options; no regularization
    /// pass needed — Megatron's sharded representation is stored as-is).
    pub fn save(&self, req: &SaveRequest<'_>) -> Result<SaveTicket> {
        let uri = req.location.uri();
        let backend = self.registry.resolve(uri)?;
        save_checkpoint(
            &self.ctx,
            backend,
            &uri.key,
            SaveArgs { state: req.state, loader: req.loader, extra: req.extra, step: req.step },
            &baseline_workflow_options(),
            &self.cache,
            &self.pool,
            &self.io,
            &self.sink,
            self.failures.clone(),
            None, // baselines persist no telemetry artifacts
        )
    }

    /// Load with MCP semantics.
    pub fn load(&self, req: &mut LoadRequest<'_>) -> Result<LoadOutcome> {
        let uri = req.location.uri();
        let backend = self.registry.resolve(uri)?;
        let report = load_checkpoint(
            &self.ctx,
            backend,
            &uri.key,
            req.state,
            &baseline_workflow_options(),
            &self.io,
            &self.sink,
            self.failures.clone(),
            0,
            None, // baselines persist no telemetry artifacts
        )?;
        Ok(LoadOutcome { report, loader: None, quarantined: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_collectives::{Backend, CommWorld};
    use bcp_model::states::build_train_state;
    use bcp_model::{zoo, TrainerConfig};
    use bcp_storage::uri::Scheme;
    use bcp_storage::{DynBackend, MemoryBackend};
    use bcp_topology::Parallelism;

    #[test]
    fn mcp_round_trip_with_tp_dp() {
        let par = Parallelism::new(2, 2, 1).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let mem: DynBackend = Arc::new(MemoryBackend::new());
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem);
        let reg = Arc::new(reg);
        let world = CommWorld::new(4, Backend::Flat);
        let mut handles = Vec::new();
        for rank in 0..4 {
            let world = world.clone();
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank).unwrap();
                let mcp = McpLike::new(comm, fw, par, reg, MetricsSink::disabled()).unwrap();
                let mut state = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                TrainerConfig::default().run(&mut state, 0, 2);
                mcp.save(&SaveRequest::new("mem://x/mcp", &state, 2)).unwrap().wait().unwrap();
                let mut fresh = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                mcp.load(&mut LoadRequest::new("mem://x/mcp", &mut fresh)).unwrap();
                let mut want = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                TrainerConfig::default().run(&mut want, 0, 2);
                for (fqn, w) in want.optimizer.entries.iter() {
                    assert!(
                        fresh.optimizer.get(fqn).unwrap().tensor.bitwise_eq(&w.tensor),
                        "rank {rank} {fqn}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn mcp_rejects_fsdp() {
        let world = CommWorld::new(1, Backend::Flat);
        let comm = world.communicator(0).unwrap();
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, Arc::new(MemoryBackend::new()) as DynBackend);
        assert!(McpLike::new(
            comm,
            Framework::Fsdp { zero3: false },
            Parallelism::data_parallel(1).unwrap(),
            Arc::new(reg),
            MetricsSink::disabled(),
        )
        .is_err());
    }

    #[test]
    fn baseline_replans_every_save() {
        let par = Parallelism::data_parallel(1).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: false };
        let mem: DynBackend = Arc::new(MemoryBackend::new());
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem);
        let reg = Arc::new(reg);
        let world = CommWorld::new(1, Backend::Flat);
        let comm = world.communicator(0).unwrap();
        let mcp = McpLike::new(comm, fw, par, reg, MetricsSink::disabled()).unwrap();
        let state = build_train_state(&zoo::tiny_gpt(), fw, par, 0, true);
        for step in 0..3 {
            mcp.save(&SaveRequest::new(format!("mem://x/replan/{step}"), &state, step))
                .unwrap()
                .wait()
                .unwrap();
        }
        // plan_cache=false: the cache sees no traffic at all.
        assert_eq!(mcp.cache.stats(), (0, 0));
    }
}
