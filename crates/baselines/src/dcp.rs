//! DCP-like checkpointing (PyTorch Distributed Checkpoint, the paper's FSDP
//! baseline).
//!
//! The defining behaviour (§3.2): "to eliminate potential irregular tensors
//! in DCP, FSDP performs synchronous all-gather communication operations,
//! interleaved with D2H copy operations for each tensor shard, regardless of
//! whether the shard is irregularly sharded. However, this approach incurs
//! significant communication overhead and requires frequent synchronization
//! between GPU and CPU." After regularization each rank re-slices an even
//! dim-0 chunk of every tensor and saves that; deduplication pins replicated
//! tensors to the first DP group; planning reruns on every save; loads read
//! without redundancy elimination or ranged multi-threading.

use crate::baseline_workflow_options;
use bcp_collectives::Communicator;
use bcp_core::api::{LoadOutcome, LoadRequest, SaveRequest};
use bcp_core::engine::iopool::IoPool;
use bcp_core::engine::pool::PinnedPool;
use bcp_core::integrity::FailureLog;
use bcp_core::planner::cache::PlanCache;
use bcp_core::registry::BackendRegistry;
use bcp_core::workflow::{load_checkpoint, save_checkpoint, JobContext, SaveArgs, SaveTicket};
use bcp_core::{BcpError, Result};
use bcp_model::states::{StateDict, StateEntry};
use bcp_model::{Framework, TrainState};
use bcp_monitor::MetricsSink;
use bcp_tensor::Tensor;
use bcp_topology::ShardSpec;
use bytes::{Bytes, BytesMut};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics of the irregular-tensor regularization pass — the cost
/// ByteCheckpoint's decomposition avoids entirely (Table 7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllGatherStats {
    /// All-gather collectives issued (one per tensor).
    pub allgathers: usize,
    /// Bytes moved over the interconnect.
    pub comm_bytes: u64,
    /// Device-to-host copies performed (interleaved, synchronous).
    pub d2h_copies: usize,
}

/// Regularize a state dict: all-gather every flat-sharded tensor across the
/// group, reconstruct the full tensor, then keep an even dim-0 chunk
/// (regular) for this rank. Returns the regularized dict plus stats.
pub fn allgather_materialize(
    comm: &Communicator,
    dict: &StateDict,
) -> Result<(StateDict, AllGatherStats)> {
    let mut out = StateDict::default();
    let mut stats = AllGatherStats::default();
    let dp = comm.size();
    let my_idx = comm.index();

    // Flat sharding cuts tensors at arbitrary boundaries, so a rank may hold
    // no piece of some tensors at all — yet every rank must join every
    // all-gather. First agree on the union of flat-sharded tensors (FSDP
    // knows this statically from its FlatParameter layout).
    let mut flat_fqns: Vec<(String, Vec<usize>, bcp_tensor::DType)> = Vec::new();
    for e in dict.entries.values() {
        if matches!(e.spec, ShardSpec::Flat { .. }) {
            flat_fqns.push((e.fqn.clone(), e.global_shape.clone(), e.dtype));
        }
        if matches!(e.spec, ShardSpec::FlatOfBox { .. }) {
            return Err(BcpError::Plan(format!(
                "{}: DCP does not support Megatron distributed-optimizer sharding",
                e.fqn
            )));
        }
    }
    let all_lists = comm.all_gather(flat_fqns).map_err(BcpError::Collective)?;
    let mut union: std::collections::BTreeMap<String, (Vec<usize>, bcp_tensor::DType)> =
        Default::default();
    for list in all_lists {
        for (fqn, shape, dtype) in list {
            union.insert(fqn, (shape, dtype));
        }
    }

    // Pass through regular entries untouched.
    for e in dict.entries.values() {
        if !matches!(e.spec, ShardSpec::Flat { .. }) {
            out.insert(e.clone());
        }
    }

    // One synchronous all-gather per flat tensor, interleaved with a D2H
    // copy of the local shard — the Table 7 pathology.
    for (fqn, (global_shape, dtype)) in union {
        let local_piece: (usize, usize, Bytes) = match dict.get(&fqn) {
            Some(entry) => {
                let (offset, length) = entry.spec.flat_range().expect("union holds flat specs");
                let local = entry.tensor.bytes().map_err(BcpError::Tensor)?;
                let mut host = BytesMut::with_capacity(local.len());
                host.extend_from_slice(local); // the D2H copy
                stats.d2h_copies += 1;
                (offset, length, host.freeze())
            }
            None => (0, 0, Bytes::new()),
        };
        let pieces: Vec<(usize, usize, Bytes)> =
            comm.all_gather(local_piece).map_err(BcpError::Collective)?;
        stats.allgathers += 1;
        stats.comm_bytes += pieces.iter().map(|(_, _, b)| b.len() as u64).sum::<u64>();
        // Reassemble the full flat tensor.
        let total: usize = global_shape.iter().product();
        let es = dtype.size();
        let mut full = BytesMut::zeroed(total * es);
        for (off, len, bytes) in &pieces {
            full[off * es..(off + len) * es].copy_from_slice(bytes);
        }
        let full = Tensor::from_bytes(dtype, global_shape.clone(), full.freeze())
            .map_err(BcpError::Tensor)?;
        // Re-slice a REGULAR chunk: even split along dim 0.
        let dim0 = global_shape.first().copied().unwrap_or(1);
        let (spec, tensor) = if dim0 >= dp && !global_shape.is_empty() {
            let spec = ShardSpec::dim(0, dp, my_idx);
            let (o, l) = spec.grid_box(&global_shape).expect("valid");
            (spec, full.extract_box(&o, &l).map_err(BcpError::Tensor)?)
        } else {
            (ShardSpec::Replicated, full)
        };
        out.insert(StateEntry { fqn, global_shape, dtype, spec, tensor });
    }
    Ok((out, stats))
}

/// Result of a DCP-like save: the ticket plus the regularization cost that
/// inflated the blocking time.
pub struct DcpSaveOutcome {
    /// The save ticket (blocking already includes the all-gather phase).
    pub ticket: SaveTicket,
    /// All-gather pass statistics.
    pub allgather: AllGatherStats,
    /// Wall-clock of the synchronous regularization phase.
    pub regularize_time: Duration,
}

/// A DCP-like checkpointer for FSDP jobs.
pub struct DcpLike {
    ctx: JobContext,
    registry: Arc<BackendRegistry>,
    sink: MetricsSink,
    cache: PlanCache, // present but unused: plan_cache=false in options
    pool: Arc<PinnedPool>,
    io: Arc<IoPool>,
    failures: Arc<FailureLog>,
}

impl DcpLike {
    /// Build a DCP-like checkpointer. The framework must be FSDP.
    pub fn new(
        comm: Communicator,
        framework: Framework,
        parallelism: bcp_topology::Parallelism,
        registry: Arc<BackendRegistry>,
        sink: MetricsSink,
    ) -> Result<DcpLike> {
        if !matches!(framework, Framework::Fsdp { .. }) {
            return Err(BcpError::Plan("DCP baseline supports FSDP only".into()));
        }
        Ok(DcpLike {
            ctx: JobContext { comm, framework, parallelism },
            registry,
            sink,
            cache: PlanCache::new(),
            pool: PinnedPool::new(2),
            io: IoPool::new(1), // single-threaded file I/O, like DCP
            failures: Arc::new(FailureLog::new()),
        })
    }

    /// Save with DCP semantics: synchronous all-gather regularization, then
    /// the baseline workflow.
    pub fn save(&self, req: &SaveRequest<'_>) -> Result<DcpSaveOutcome> {
        let uri = req.location.uri();
        let backend = self.registry.resolve(uri)?;
        let t0 = Instant::now();
        let (model, s1) = allgather_materialize(&self.ctx.comm, &req.state.model)?;
        let (optimizer, s2) = allgather_materialize(&self.ctx.comm, &req.state.optimizer)?;
        let regularize_time = t0.elapsed();
        let allgather = AllGatherStats {
            allgathers: s1.allgathers + s2.allgathers,
            comm_bytes: s1.comm_bytes + s2.comm_bytes,
            d2h_copies: s1.d2h_copies + s2.d2h_copies,
        };
        let regular = TrainState { model, optimizer };
        let options = baseline_workflow_options();
        let ticket = save_checkpoint(
            &self.ctx,
            backend,
            &uri.key,
            SaveArgs { state: &regular, loader: req.loader, extra: req.extra, step: req.step },
            &options,
            &self.cache,
            &self.pool,
            &self.io,
            &self.sink,
            self.failures.clone(),
            None, // baselines persist no telemetry artifacts
        )?;
        Ok(DcpSaveOutcome { ticket, allgather, regularize_time })
    }

    /// Load with DCP semantics (no read dedup, single-threaded fetches).
    /// Resharding across saved/target parallelism still works: the saved
    /// format is box-addressed like ByteCheckpoint's.
    pub fn load(&self, req: &mut LoadRequest<'_>) -> Result<LoadOutcome> {
        let uri = req.location.uri();
        let backend = self.registry.resolve(uri)?;
        let options = baseline_workflow_options();
        let report = load_checkpoint(
            &self.ctx,
            backend.clone(),
            &uri.key,
            req.state,
            &options,
            &self.io,
            &self.sink,
            self.failures.clone(),
            0,
            None, // baselines persist no telemetry artifacts
        )?;
        Ok(LoadOutcome { report, loader: None, quarantined: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_collectives::{Backend, CommWorld};
    use bcp_model::states::build_train_state;
    use bcp_model::{zoo, TrainerConfig};
    use bcp_storage::uri::Scheme;
    use bcp_storage::{DynBackend, MemoryBackend};
    use bcp_topology::Parallelism;

    fn registry() -> Arc<BackendRegistry> {
        let mem: DynBackend = Arc::new(MemoryBackend::new());
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem);
        Arc::new(reg)
    }

    #[test]
    fn allgather_regularizes_flat_shards_bitwise() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(3).unwrap();
        let fw = Framework::Fsdp { zero3: true };
        let world = CommWorld::new(3, Backend::Flat);
        let mut handles = Vec::new();
        for rank in 0..3 {
            let world = world.clone();
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank).unwrap();
                let state = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                allgather_materialize(&comm, &state.model).unwrap()
            }));
        }
        let results: Vec<(StateDict, AllGatherStats)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Reference: the full model.
        let full = build_train_state(
            &arch,
            Framework::Ddp,
            Parallelism::data_parallel(1).unwrap(),
            0,
            true,
        );
        for (rank, (dict, stats)) in results.iter().enumerate() {
            assert!(stats.allgathers > 0 && stats.comm_bytes > 0 && stats.d2h_copies > 0);
            for e in dict.entries.values() {
                assert!(!e.spec.is_irregular(&e.global_shape), "{} still irregular", e.fqn);
                let reference = full.model.get(&e.fqn).unwrap();
                match &e.spec {
                    ShardSpec::Replicated => assert!(e.tensor.bitwise_eq(&reference.tensor)),
                    spec => {
                        let (o, l) = spec.grid_box(&e.global_shape).unwrap();
                        let want = reference.tensor.extract_box(&o, &l).unwrap();
                        assert!(e.tensor.bitwise_eq(&want), "rank {rank} {}", e.fqn);
                    }
                }
            }
        }
    }

    #[test]
    fn dcp_round_trip_is_correct_but_communicates() {
        // DCP stays correct — the paper's point is cost, not correctness.
        let par = Parallelism::data_parallel(2).unwrap();
        let fw = Framework::Fsdp { zero3: true };
        let reg = registry();
        let world = CommWorld::new(2, Backend::Flat);
        let mut handles = Vec::new();
        for rank in 0..2 {
            let world = world.clone();
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let comm = world.communicator(rank).unwrap();
                let dcp = DcpLike::new(comm, fw, par, reg, MetricsSink::disabled()).unwrap();
                let mut state = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                TrainerConfig::default().run(&mut state, 0, 2);
                let out = dcp.save(&SaveRequest::new("mem://x/dcp", &state, 2)).unwrap();
                assert!(out.allgather.comm_bytes > 0, "DCP must pay communication");
                out.ticket.wait().unwrap();
                // Load back into the original (flat) sharding.
                let mut fresh = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                dcp.load(&mut LoadRequest::new("mem://x/dcp", &mut fresh)).unwrap();
                let mut want = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                TrainerConfig::default().run(&mut want, 0, 2);
                for (fqn, w) in &want.model.entries {
                    assert!(
                        fresh.model.get(fqn).unwrap().tensor.bitwise_eq(&w.tensor),
                        "rank {rank} {fqn}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dcp_rejects_megatron() {
        let world = CommWorld::new(1, Backend::Flat);
        let comm = world.communicator(0).unwrap();
        let err = DcpLike::new(
            comm,
            Framework::Megatron { distributed_optimizer: true },
            Parallelism::data_parallel(1).unwrap(),
            registry(),
            MetricsSink::disabled(),
        );
        assert!(err.is_err());
    }
}
