//! Failure injection: a backend wrapper that fails a configurable number of
//! operations, for exercising the engine's upload/download retry machinery
//! and failure logging (paper Appendix B).

use crate::{DynBackend, Result, StorageBackend, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which operation classes to inject failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Fail writes/appends/concats (upload path).
    Writes,
    /// Fail reads (download path).
    Reads,
    /// Fail both.
    All,
}

/// A backend that fails the first `failures_per_path` matching operations on
/// each path, then succeeds — modeling transient storage faults that retry
/// loops must absorb.
pub struct FlakyBackend {
    inner: DynBackend,
    mode: FailureMode,
    failures_per_path: u32,
    counts: Mutex<HashMap<String, u32>>,
    injected_total: AtomicU64,
}

impl FlakyBackend {
    /// Wrap `inner`, injecting `failures_per_path` failures per path for the
    /// chosen operation class.
    pub fn new(inner: DynBackend, mode: FailureMode, failures_per_path: u32) -> FlakyBackend {
        FlakyBackend {
            inner,
            mode,
            failures_per_path,
            counts: Mutex::new(HashMap::new()),
            injected_total: AtomicU64::new(0),
        }
    }

    /// Total number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected_total.load(Ordering::Relaxed)
    }

    fn maybe_fail(&self, path: &str, class: FailureMode) -> Result<()> {
        let applicable = matches!(self.mode, FailureMode::All) || self.mode == class;
        if !applicable {
            return Ok(());
        }
        let mut counts = self.counts.lock();
        let used = counts.entry(path.to_string()).or_insert(0);
        if *used < self.failures_per_path {
            *used += 1;
            let remaining = self.failures_per_path - *used;
            self.injected_total.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Injected { path: path.to_string(), remaining });
        }
        Ok(())
    }
}

impl StorageBackend for FlakyBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.maybe_fail(path, FailureMode::Writes)?;
        self.inner.write(path, data)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        self.maybe_fail(path, FailureMode::Writes)?;
        self.inner.write_segments(path, segments)
    }

    fn zero_copy_reads(&self) -> bool {
        self.inner.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.maybe_fail(path, FailureMode::Writes)?;
        self.inner.append(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.maybe_fail(path, FailureMode::Reads)?;
        self.inner.read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.maybe_fail(path, FailureMode::Reads)?;
        self.inner.read_range(path, offset, len)
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.maybe_fail(from, FailureMode::Writes)?;
        self.inner.rename(from, to)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.maybe_fail(target, FailureMode::Writes)?;
        self.inner.concat(target, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;

    #[test]
    fn fails_then_succeeds_per_path() {
        let f = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 2);
        let data = Bytes::from_static(b"x");
        assert!(matches!(f.write("a", data.clone()), Err(StorageError::Injected { .. })));
        assert!(matches!(f.write("a", data.clone()), Err(StorageError::Injected { .. })));
        assert!(f.write("a", data.clone()).is_ok());
        // Independent budget per path.
        assert!(matches!(f.write("b", data.clone()), Err(StorageError::Injected { .. })));
        assert_eq!(f.injected(), 3);
    }

    #[test]
    fn read_mode_does_not_affect_writes() {
        let f = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Reads, 1);
        f.write("a", Bytes::from_static(b"1")).unwrap();
        assert!(f.read("a").is_err());
        assert_eq!(&f.read("a").unwrap()[..], b"1");
    }
}
