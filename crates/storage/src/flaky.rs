//! Failure injection: a backend wrapper that fails a configurable number of
//! operations, for exercising the engine's upload/download retry machinery
//! and failure logging (paper Appendix B). Optionally adds seeded per-op
//! latency jitter so slow-I/O paths (timeouts, stragglers, overlap windows)
//! are exercised alongside hard errors.

use crate::{DynBackend, Result, StorageBackend, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which operation classes to inject failures into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// Fail writes/appends/concats (upload path).
    Writes,
    /// Fail reads (download path).
    Reads,
    /// Fail both.
    All,
}

/// A backend that fails the first `failures_per_path` matching operations on
/// each path, then succeeds — modeling transient storage faults that retry
/// loops must absorb.
pub struct FlakyBackend {
    inner: DynBackend,
    mode: FailureMode,
    failures_per_path: u32,
    counts: Mutex<HashMap<String, u32>>,
    injected_total: AtomicU64,
    /// Seeded per-op latency jitter: `(seed, max)` sleeps a deterministic
    /// pseudo-random duration in `[0, max)` before every data operation.
    jitter: Option<(u64, Duration)>,
    op_counter: AtomicU64,
}

impl FlakyBackend {
    /// Wrap `inner`, injecting `failures_per_path` failures per path for the
    /// chosen operation class.
    pub fn new(inner: DynBackend, mode: FailureMode, failures_per_path: u32) -> FlakyBackend {
        FlakyBackend {
            inner,
            mode,
            failures_per_path,
            counts: Mutex::new(HashMap::new()),
            injected_total: AtomicU64::new(0),
            jitter: None,
            op_counter: AtomicU64::new(0),
        }
    }

    /// Add seeded latency jitter: every data operation (read, ranged read,
    /// write, gather-write, append, rename, concat) first sleeps a
    /// deterministic pseudo-random duration in `[0, max)` derived from
    /// `seed` and the global op counter. Same seed → same jitter sequence.
    pub fn with_jitter(mut self, seed: u64, max: Duration) -> FlakyBackend {
        self.jitter = Some((seed, max));
        self
    }

    /// Total number of failures injected so far.
    pub fn injected(&self) -> u64 {
        self.injected_total.load(Ordering::Relaxed)
    }

    /// Deterministic jitter sleep (splitmix64 over seed ^ op index — the
    /// same seeded-PRNG idiom as `CorruptingBackend`; `rand` is a
    /// dev-dependency only).
    fn jitter_sleep(&self) {
        let Some((seed, max)) = self.jitter else { return };
        let max_ns = max.as_nanos() as u64;
        if max_ns == 0 {
            return;
        }
        let op = self.op_counter.fetch_add(1, Ordering::Relaxed);
        let mut z = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        std::thread::sleep(Duration::from_nanos(z % max_ns));
    }

    fn maybe_fail(&self, path: &str, class: FailureMode) -> Result<()> {
        self.jitter_sleep();
        let applicable = matches!(self.mode, FailureMode::All) || self.mode == class;
        if !applicable {
            return Ok(());
        }
        let mut counts = self.counts.lock();
        let used = counts.entry(path.to_string()).or_insert(0);
        if *used < self.failures_per_path {
            *used += 1;
            let remaining = self.failures_per_path - *used;
            self.injected_total.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::Injected { path: path.to_string(), remaining });
        }
        Ok(())
    }
}

impl StorageBackend for FlakyBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.maybe_fail(path, FailureMode::Writes)?;
        self.inner.write(path, data)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        self.maybe_fail(path, FailureMode::Writes)?;
        self.inner.write_segments(path, segments)
    }

    fn zero_copy_reads(&self) -> bool {
        self.inner.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.maybe_fail(path, FailureMode::Writes)?;
        self.inner.append(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.maybe_fail(path, FailureMode::Reads)?;
        self.inner.read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.maybe_fail(path, FailureMode::Reads)?;
        self.inner.read_range(path, offset, len)
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.maybe_fail(from, FailureMode::Writes)?;
        self.inner.rename(from, to)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.maybe_fail(target, FailureMode::Writes)?;
        self.inner.concat(target, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;

    #[test]
    fn fails_then_succeeds_per_path() {
        let f = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 2);
        let data = Bytes::from_static(b"x");
        assert!(matches!(f.write("a", data.clone()), Err(StorageError::Injected { .. })));
        assert!(matches!(f.write("a", data.clone()), Err(StorageError::Injected { .. })));
        assert!(f.write("a", data.clone()).is_ok());
        // Independent budget per path.
        assert!(matches!(f.write("b", data.clone()), Err(StorageError::Injected { .. })));
        assert_eq!(f.injected(), 3);
    }

    #[test]
    fn read_mode_does_not_affect_writes() {
        let f = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Reads, 1);
        f.write("a", Bytes::from_static(b"1")).unwrap();
        assert!(f.read("a").is_err());
        assert_eq!(&f.read("a").unwrap()[..], b"1");
    }

    #[test]
    fn jitter_preserves_semantics_and_slows_ops() {
        let f = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 0)
            .with_jitter(42, std::time::Duration::from_micros(200));
        let start = std::time::Instant::now();
        for i in 0..32 {
            f.write(&format!("p{i}"), Bytes::from_static(b"x")).unwrap();
            assert_eq!(&f.read(&format!("p{i}")).unwrap()[..], b"x");
        }
        // 64 jittered ops, each sleeping in [0, 200µs): some latency must
        // accumulate, but the data path stays correct and failure-free.
        assert!(start.elapsed() > std::time::Duration::from_micros(200));
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn zero_jitter_is_a_no_op() {
        let f = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 0)
            .with_jitter(7, std::time::Duration::ZERO);
        f.write("a", Bytes::from_static(b"1")).unwrap();
        assert_eq!(&f.read("a").unwrap()[..], b"1");
    }
}
