//! Mutation journal: a backend wrapper that records every successful
//! mutating operation — `write`, `write_segments`, `append`, `delete`,
//! `rename`, `concat` — and can materialize *any* post-crash storage state:
//! every prefix of the mutation log (crash between ops) plus torn variants
//! of the in-flight final op (crash mid-write, truncating the new content at
//! an arbitrary byte offset, including mid-segment inside a
//! `write_segments` gather-write).
//!
//! Each logged op is a durability point: the wrapped backend applies ops
//! atomically, so the crash model is "some prefix of the log is durable,
//! and the next op may be torn". `rename` and `delete` are themselves
//! atomic (rename is the commit point of the checkpoint protocol), so they
//! contribute prefix states but no torn variants.

use crate::memory::MemoryBackend;
use crate::{DynBackend, Result, StorageBackend};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One recorded mutating operation, with enough payload to replay it.
#[derive(Debug, Clone)]
pub enum JournalOp {
    /// Whole-object create-or-replace.
    Write { path: String, data: Bytes },
    /// Gather-write: segments concatenated in order.
    WriteSegments { path: String, segments: Vec<Bytes> },
    /// Append to an existing (or new) object.
    Append { path: String, data: Bytes },
    /// Object removal.
    Delete { path: String },
    /// Atomic rename (the commit-protocol primitive).
    Rename { from: String, to: String },
    /// Merge parts into target, removing the parts.
    Concat { target: String, parts: Vec<String> },
}

impl JournalOp {
    /// Short label for matrix/debug output, e.g. `write step_2/COMPLETE`.
    pub fn label(&self) -> String {
        match self {
            JournalOp::Write { path, .. } => format!("write {path}"),
            JournalOp::WriteSegments { path, segments } => {
                format!("write_segments {path} ({} segs)", segments.len())
            }
            JournalOp::Append { path, .. } => format!("append {path}"),
            JournalOp::Delete { path } => format!("delete {path}"),
            JournalOp::Rename { from, to } => format!("rename {from} -> {to}"),
            JournalOp::Concat { target, parts } => {
                format!("concat {target} ({} parts)", parts.len())
            }
        }
    }
}

/// Records every mutating op against the wrapped backend and replays
/// arbitrary prefixes (plus torn final writes) into fresh
/// [`MemoryBackend`]s for crash-consistency exploration.
pub struct JournalBackend {
    inner: DynBackend,
    log: Mutex<Vec<JournalOp>>,
    baseline: Mutex<BTreeMap<String, Bytes>>,
}

impl JournalBackend {
    /// Wrap `inner`, snapshotting its current contents as the baseline all
    /// materialized crash states start from.
    pub fn new(inner: DynBackend) -> Result<JournalBackend> {
        let baseline = Self::snapshot(&inner)?;
        Ok(JournalBackend { inner, log: Mutex::new(Vec::new()), baseline: Mutex::new(baseline) })
    }

    fn snapshot(inner: &DynBackend) -> Result<BTreeMap<String, Bytes>> {
        let mut map = BTreeMap::new();
        for path in inner.list("")? {
            map.insert(path.clone(), inner.read(&path)?);
        }
        Ok(map)
    }

    /// Re-snapshot the wrapped backend as the new baseline and clear the
    /// log. Call between "known good" saves so every enumerated crash state
    /// contains the committed prior step.
    pub fn rebase(&self) -> Result<()> {
        let snap = Self::snapshot(&self.inner)?;
        *self.baseline.lock() = snap;
        self.log.lock().clear();
        Ok(())
    }

    /// The recorded mutation log, in order.
    pub fn ops(&self) -> Vec<JournalOp> {
        self.log.lock().clone()
    }

    /// Materialize the storage state after the first `n` ops (crash between
    /// op `n-1` and op `n`). `n == 0` is the baseline; `n == ops().len()`
    /// is the fully-applied state.
    pub fn materialize_prefix(&self, n: usize) -> Result<Arc<MemoryBackend>> {
        let mem = Arc::new(MemoryBackend::new());
        for (path, data) in self.baseline.lock().iter() {
            mem.write(path, data.clone())?;
        }
        let ops = self.log.lock();
        for op in ops.iter().take(n) {
            replay(mem.as_ref(), op)?;
        }
        Ok(mem)
    }

    /// Materialize the state where ops `0..n` are durable and op `n`'s new
    /// content was torn after `cut` bytes. For `write`/`write_segments`
    /// the object exists truncated to `cut` bytes (a `cut` of 0 models a
    /// created-but-empty file — the torn-marker state); for `append` only
    /// `cut` bytes of the new data landed; for `concat` the merged target
    /// is truncated and the parts were *not* removed. `delete`/`rename`
    /// are atomic and have no torn variants.
    pub fn materialize_torn(&self, n: usize, cut: u64) -> Result<Arc<MemoryBackend>> {
        let mem = self.materialize_prefix(n)?;
        let op = {
            let ops = self.log.lock();
            ops.get(n).cloned()
        };
        let Some(op) = op else { return Ok(mem) };
        let cut = cut as usize;
        match op {
            JournalOp::Write { path, data } => {
                let cut = cut.min(data.len());
                mem.write(&path, data.slice(0..cut))?;
            }
            JournalOp::WriteSegments { path, segments } => {
                let total: usize = segments.iter().map(Bytes::len).sum();
                let cut = cut.min(total);
                let mut buf = Vec::with_capacity(cut);
                for seg in &segments {
                    if buf.len() >= cut {
                        break;
                    }
                    let take = (cut - buf.len()).min(seg.len());
                    buf.extend_from_slice(&seg[..take]);
                }
                mem.write(&path, Bytes::from(buf))?;
            }
            JournalOp::Append { path, data } => {
                let cut = cut.min(data.len());
                mem.append(&path, &data[..cut])?;
            }
            JournalOp::Concat { target, parts } => {
                let mut buf = Vec::new();
                for part in &parts {
                    buf.extend_from_slice(&mem.read(part)?);
                }
                buf.truncate(cut.min(buf.len()));
                mem.write(&target, Bytes::from(buf))?;
            }
            JournalOp::Delete { .. } | JournalOp::Rename { .. } => {}
        }
        Ok(mem)
    }

    /// Interesting truncation offsets for op `n`: first/last byte, midpoint,
    /// and — for gather-writes and concats — every part boundary plus each
    /// part's midpoint, so crashes *inside* a `write_segments` segment are
    /// covered. Offsets are strictly less than the op's total new-byte
    /// count (the full write is the next prefix state). Atomic ops
    /// (`delete`, `rename`) return an empty set.
    pub fn torn_points(&self, n: usize) -> Result<Vec<u64>> {
        let op = {
            let ops = self.log.lock();
            ops.get(n).cloned()
        };
        let Some(op) = op else { return Ok(Vec::new()) };
        let (total, part_lens): (u64, Vec<u64>) = match &op {
            JournalOp::Write { data, .. } | JournalOp::Append { data, .. } => {
                (data.len() as u64, Vec::new())
            }
            JournalOp::WriteSegments { segments, .. } => {
                let lens: Vec<u64> = segments.iter().map(|s| s.len() as u64).collect();
                (lens.iter().sum(), lens)
            }
            JournalOp::Concat { parts, .. } => {
                // Part sizes depend on the state at op `n`; measure them.
                let mem = self.materialize_prefix(n)?;
                let lens: Vec<u64> = parts.iter().map(|p| mem.size(p)).collect::<Result<_>>()?;
                (lens.iter().sum(), lens)
            }
            JournalOp::Delete { .. } | JournalOp::Rename { .. } => return Ok(Vec::new()),
        };
        let mut cuts = vec![0, 1, total / 2, total.saturating_sub(1)];
        let mut pos = 0u64;
        for len in part_lens {
            cuts.push(pos + len / 2);
            pos += len;
            cuts.push(pos);
        }
        cuts.retain(|&c| c < total);
        cuts.sort_unstable();
        cuts.dedup();
        Ok(cuts)
    }
}

fn replay(mem: &MemoryBackend, op: &JournalOp) -> Result<()> {
    match op {
        JournalOp::Write { path, data } => mem.write(path, data.clone()),
        JournalOp::WriteSegments { path, segments } => mem.write_segments(path, segments),
        JournalOp::Append { path, data } => mem.append(path, data),
        JournalOp::Delete { path } => mem.delete(path),
        JournalOp::Rename { from, to } => mem.rename(from, to),
        JournalOp::Concat { target, parts } => mem.concat(target, parts),
    }
}

impl StorageBackend for JournalBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.inner.write(path, data.clone())?;
        self.log.lock().push(JournalOp::Write { path: path.to_string(), data });
        Ok(())
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        self.inner.write_segments(path, segments)?;
        self.log
            .lock()
            .push(JournalOp::WriteSegments { path: path.to_string(), segments: segments.to_vec() });
        Ok(())
    }

    fn zero_copy_reads(&self) -> bool {
        self.inner.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.inner.append(path, data)?;
        self.log
            .lock()
            .push(JournalOp::Append { path: path.to_string(), data: Bytes::copy_from_slice(data) });
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.inner.read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.inner.read_range(path, offset, len)
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)?;
        self.log.lock().push(JournalOp::Delete { path: path.to_string() });
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)?;
        self.log.lock().push(JournalOp::Rename { from: from.to_string(), to: to.to_string() });
        Ok(())
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.inner.concat(target, parts)?;
        self.log
            .lock()
            .push(JournalOp::Concat { target: target.to_string(), parts: parts.to_vec() });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journaled() -> JournalBackend {
        JournalBackend::new(Arc::new(MemoryBackend::new())).unwrap()
    }

    #[test]
    fn passes_conformance() {
        crate::conformance::run_all(&journaled());
    }

    #[test]
    fn records_only_successful_mutations() {
        let j = journaled();
        j.write("a", Bytes::from_static(b"one")).unwrap();
        assert!(j.delete("missing").is_err());
        j.append("a", b"two").unwrap();
        let ops = j.ops();
        assert_eq!(ops.len(), 2);
        assert!(matches!(&ops[0], JournalOp::Write { path, .. } if path == "a"));
        assert!(matches!(&ops[1], JournalOp::Append { path, .. } if path == "a"));
    }

    #[test]
    fn prefix_materialization_replays_log_over_baseline() {
        let inner: DynBackend = Arc::new(MemoryBackend::new());
        inner.write("pre/existing", Bytes::from_static(b"base")).unwrap();
        let j = JournalBackend::new(inner).unwrap();
        j.write("a", Bytes::from_static(b"111")).unwrap();
        j.write("b", Bytes::from_static(b"222")).unwrap();
        j.delete("a").unwrap();

        let s0 = j.materialize_prefix(0).unwrap();
        assert_eq!(&s0.read("pre/existing").unwrap()[..], b"base");
        assert!(!s0.exists("a").unwrap());

        let s2 = j.materialize_prefix(2).unwrap();
        assert!(s2.exists("a").unwrap());
        assert_eq!(&s2.read("b").unwrap()[..], b"222");

        let s3 = j.materialize_prefix(3).unwrap();
        assert!(!s3.exists("a").unwrap());
    }

    #[test]
    fn torn_write_truncates_new_content() {
        let j = journaled();
        j.write("f", Bytes::from_static(b"0123456789")).unwrap();
        let torn = j.materialize_torn(0, 4).unwrap();
        assert_eq!(&torn.read("f").unwrap()[..], b"0123");
        // cut = 0 models the created-but-empty file.
        let empty = j.materialize_torn(0, 0).unwrap();
        assert!(empty.exists("f").unwrap());
        assert_eq!(empty.size("f").unwrap(), 0);
    }

    #[test]
    fn torn_gather_write_cuts_mid_segment() {
        let j = journaled();
        let segs = vec![Bytes::from_static(b"AAAA"), Bytes::from_static(b"BBBB")];
        j.write_segments("g", &segs).unwrap();
        // Cut inside the second segment.
        let torn = j.materialize_torn(0, 6).unwrap();
        assert_eq!(&torn.read("g").unwrap()[..], b"AAAABB");
        // Torn points include the segment boundary (4) and mid-segment cuts.
        let cuts = j.torn_points(0).unwrap();
        assert!(cuts.contains(&4), "segment boundary missing from {cuts:?}");
        assert!(cuts.contains(&2) && cuts.contains(&6), "mid-segment cuts missing: {cuts:?}");
        assert!(cuts.len() >= 3);
        assert!(cuts.iter().all(|&c| c < 8));
    }

    #[test]
    fn torn_append_keeps_old_content() {
        let j = journaled();
        j.write("log", Bytes::from_static(b"old")).unwrap();
        j.append("log", b"new").unwrap();
        let torn = j.materialize_torn(1, 1).unwrap();
        assert_eq!(&torn.read("log").unwrap()[..], b"oldn");
    }

    #[test]
    fn torn_concat_keeps_parts() {
        let j = journaled();
        j.write("p0", Bytes::from_static(b"AA")).unwrap();
        j.write("p1", Bytes::from_static(b"BB")).unwrap();
        j.concat("merged", &["p0".into(), "p1".into()]).unwrap();
        let torn = j.materialize_torn(2, 3).unwrap();
        assert_eq!(&torn.read("merged").unwrap()[..], b"AAB");
        assert!(torn.exists("p0").unwrap(), "crash before part removal keeps parts");
        assert!(torn.exists("p1").unwrap());
    }

    #[test]
    fn atomic_ops_have_no_torn_variants() {
        let j = journaled();
        j.write("a", Bytes::from_static(b"x")).unwrap();
        j.rename("a", "b").unwrap();
        j.delete("b").unwrap();
        assert!(j.torn_points(1).unwrap().is_empty());
        assert!(j.torn_points(2).unwrap().is_empty());
    }

    #[test]
    fn rebase_clears_log_and_resnapshots() {
        let j = journaled();
        j.write("kept", Bytes::from_static(b"v1")).unwrap();
        j.rebase().unwrap();
        assert!(j.ops().is_empty());
        let s0 = j.materialize_prefix(0).unwrap();
        assert_eq!(&s0.read("kept").unwrap()[..], b"v1");
    }
}
