//! Local-disk backend: real files under a root directory.
//!
//! This is the backend integration tests and examples run against — every
//! byte the engine claims to persist actually hits the filesystem. Paths are
//! sanitized so a checkpoint path can never escape the root.

use crate::{Result, StorageBackend, StorageError};
use bytes::Bytes;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A backend rooted at a directory on the local filesystem.
pub struct DiskBackend {
    root: PathBuf,
}

impl DiskBackend {
    /// Create a backend rooted at `root`, creating the directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> Result<DiskBackend> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        Ok(DiskBackend { root })
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, path: &str) -> Result<PathBuf> {
        if path.is_empty() || path.split('/').any(|c| c == ".." || c.is_empty()) {
            return Err(StorageError::Io(format!("invalid object path {path:?}")));
        }
        Ok(self.root.join(path))
    }

    fn ensure_parent(&self, p: &Path) -> Result<()> {
        if let Some(parent) = p.parent() {
            fs::create_dir_all(parent).map_err(io_err)?;
        }
        Ok(())
    }

    /// fsync the directory containing `p` so a rename into it survives a
    /// crash. Without this a crashed process can commit a `COMPLETE` marker
    /// whose directory entry never reached disk.
    fn sync_parent_dir(p: &Path) -> Result<()> {
        #[cfg(unix)]
        if let Some(parent) = p.parent() {
            fs::File::open(parent).map_err(io_err)?.sync_all().map_err(io_err)?;
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

impl StorageBackend for DiskBackend {
    fn name(&self) -> &str {
        "disk"
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        vec![("root", self.root.display().to_string())]
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        let p = self.resolve(path)?;
        self.ensure_parent(&p)?;
        // Write + fsync the temp file, then rename: a crash at any point
        // leaves either the old object or the new one, never a torn file —
        // so a partial COMPLETE marker or global-metadata file is impossible.
        let tmp = p.with_extension("tmp.partial");
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(&data).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        fs::rename(&tmp, &p).map_err(io_err)?;
        Self::sync_parent_dir(&p)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        let p = self.resolve(path)?;
        self.ensure_parent(&p)?;
        let tmp = p.with_extension("tmp.partial");
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            for seg in segments {
                f.write_all(seg).map_err(io_err)?;
            }
            f.sync_all().map_err(io_err)?;
        }
        fs::rename(&tmp, &p).map_err(io_err)?;
        Self::sync_parent_dir(&p)
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        let p = self.resolve(path)?;
        self.ensure_parent(&p)?;
        let mut f = fs::OpenOptions::new().create(true).append(true).open(&p).map_err(io_err)?;
        f.write_all(data).map_err(io_err)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        let p = self.resolve(path)?;
        match fs::read(&p) {
            Ok(v) => Ok(Bytes::from(v)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(path.to_string()))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let p = self.resolve(path)?;
        let mut f = match fs::File::open(&p) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StorageError::NotFound(path.to_string()))
            }
            Err(e) => return Err(io_err(e)),
        };
        let size = f.metadata().map_err(io_err)?.len();
        if offset + len > size {
            return Err(StorageError::RangeOutOfBounds {
                path: path.to_string(),
                size,
                offset,
                len,
            });
        }
        f.seek(SeekFrom::Start(offset)).map_err(io_err)?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf).map_err(io_err)?;
        Ok(Bytes::from(buf))
    }

    fn size(&self, path: &str) -> Result<u64> {
        let p = self.resolve(path)?;
        match fs::metadata(&p) {
            Ok(m) if m.is_file() => Ok(m.len()),
            Ok(_) => Err(StorageError::NotFound(path.to_string())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(path.to_string()))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.resolve(path)?.is_file())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        // Walk the deepest existing directory implied by the prefix, then
        // filter by full key prefix.
        let dir_part = match prefix.rfind('/') {
            Some(i) => &prefix[..i],
            None => "",
        };
        let start = if dir_part.is_empty() { self.root.clone() } else { self.root.join(dir_part) };
        let mut out = Vec::new();
        if start.exists() {
            walk(&start, &mut |p| {
                if let Ok(rel) = p.strip_prefix(&self.root) {
                    let key = rel.to_string_lossy().replace('\\', "/");
                    if key.starts_with(prefix) && !key.ends_with(".tmp.partial") {
                        out.push(key);
                    }
                }
            })
            .map_err(io_err)?;
        }
        out.sort();
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<()> {
        let p = self.resolve(path)?;
        match fs::remove_file(&p) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(path.to_string()))
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let f = self.resolve(from)?;
        let t = self.resolve(to)?;
        if !f.is_file() {
            return Err(StorageError::NotFound(from.to_string()));
        }
        self.ensure_parent(&t)?;
        fs::rename(&f, &t).map_err(io_err)?;
        Self::sync_parent_dir(&t)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        let t = self.resolve(target)?;
        self.ensure_parent(&t)?;
        let tmp = t.with_extension("tmp.partial");
        {
            let mut out = fs::File::create(&tmp).map_err(io_err)?;
            for part in parts {
                let p = self.resolve(part)?;
                let mut f = match fs::File::open(&p) {
                    Ok(f) => f,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        return Err(StorageError::NotFound(part.clone()))
                    }
                    Err(e) => return Err(io_err(e)),
                };
                std::io::copy(&mut f, &mut out).map_err(io_err)?;
            }
            out.sync_all().map_err(io_err)?;
        }
        fs::rename(&tmp, &t).map_err(io_err)?;
        Self::sync_parent_dir(&t)?;
        for part in parts {
            let p = self.resolve(part)?;
            let _ = fs::remove_file(p);
        }
        Ok(())
    }
}

fn walk(dir: &Path, f: &mut impl FnMut(&Path)) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let p = entry.path();
        if p.is_dir() {
            walk(&p, f)?;
        } else {
            f(&p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> DiskBackend {
        let dir = std::env::temp_dir().join(format!(
            "bcp-disk-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        DiskBackend::new(dir).unwrap()
    }

    #[test]
    fn conformance() {
        crate::conformance::run_all(&fresh());
    }

    #[test]
    fn rejects_path_escape() {
        let d = fresh();
        assert!(d.write("../evil", Bytes::from_static(b"x")).is_err());
        assert!(d.read("a/../../evil").is_err());
        assert!(d.write("", Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn nested_paths_create_directories() {
        let d = fresh();
        d.write("deep/nested/dir/file.bin", Bytes::from_static(b"ok")).unwrap();
        assert_eq!(&d.read("deep/nested/dir/file.bin").unwrap()[..], b"ok");
    }

    #[test]
    fn list_skips_partial_files() {
        let d = fresh();
        d.write("x/a", Bytes::from_static(b"1")).unwrap();
        fs::write(d.root().join("x/b.tmp.partial"), b"junk").unwrap();
        assert_eq!(d.list("x/").unwrap(), vec!["x/a".to_string()]);
    }
}
