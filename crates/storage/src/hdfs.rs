//! Simulated HDFS: the paper's primary storage backend (§4.3, §5.1, §6.4).
//!
//! What is modeled, and why it matters to the checkpointing system:
//!
//! * **Append-only writes.** HDFS cannot patch a file at an offset, so the
//!   engine's multi-threaded upload must split a file into sub-files and
//!   merge them with a *metadata-level concat* — the §4.3 write path. The
//!   backend enforces this: `write` creates/replaces whole objects,
//!   `append` extends, there is no ranged write.
//! * **NameNode metadata costs.** Every metadata operation (create, exists,
//!   list, rename, concat, delete) pays a configurable latency and passes a
//!   QPS throttle, reproducing "massive read/write requests ... can overload
//!   the master node". Concat is serial under a NameNode-wide lock unless
//!   [`HdfsConfig::parallel_concat`] is set — the §6.4 bottleneck and fix.
//! * **NNProxy.** A metadata cache in front of the NameNode serving
//!   `exists`/`size` hits without paying NameNode latency, with
//!   write-path invalidation (§5.1).
//! * **Ranged multi-threaded reads.** Reads are served from the object
//!   store without NameNode involvement beyond an open, mirroring the SDK's
//!   random-read capability the paper exploits for 2-3 GB/s downloads.
//! * **SSD→HDD cool-down.** [`HdfsBackend::cool_down`] migrates objects not
//!   touched within a retention window to the cold tier via pure metadata
//!   remapping; original paths keep working (§5.1).
//!
//! Data sits in in-process memory — the *behavioural* contract (who pays
//! which metadata ops, what must be concatenated, what can be read in
//! parallel) is what the engine exercises, per the DESIGN.md substitution
//! table.

use crate::{Result, StorageBackend, StorageError};
use bytes::{Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Tunables for the simulated HDFS cluster.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// Latency charged per NameNode metadata operation.
    pub meta_latency: Duration,
    /// Maximum metadata operations per second (token bucket); `None`
    /// disables throttling.
    pub meta_qps_limit: Option<u32>,
    /// Whether concat executes in parallel (the §6.4 fix) or serially under
    /// the NameNode lock (the bottleneck as found).
    pub parallel_concat: bool,
    /// Whether the NNProxy metadata cache is enabled.
    pub nnproxy_cache: bool,
    /// Cool-down retention: objects idle longer than this are eligible for
    /// SSD→HDD migration.
    pub cooldown_retention: Duration,
}

impl Default for HdfsConfig {
    fn default() -> HdfsConfig {
        HdfsConfig {
            // Keep simulated latencies tiny so tests stay fast; benches and
            // monitoring demos raise them to realistic values.
            meta_latency: Duration::from_micros(50),
            meta_qps_limit: None,
            parallel_concat: true,
            nnproxy_cache: true,
            cooldown_retention: Duration::from_secs(3600),
        }
    }
}

/// Counters exposed by the NameNode for storage-side monitoring (§5.3).
#[derive(Debug, Default)]
pub struct NameNodeStats {
    /// Total metadata operations served by the NameNode.
    pub meta_ops: AtomicU64,
    /// Metadata operations absorbed by the NNProxy cache.
    pub proxy_hits: AtomicU64,
    /// Concat operations executed.
    pub concats: AtomicU64,
    /// Total time spent waiting on the QPS throttle, in microseconds.
    pub throttle_wait_us: AtomicU64,
}

impl NameNodeStats {
    /// Snapshot (meta_ops, proxy_hits, concats, throttle_wait_us).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.meta_ops.load(Ordering::Relaxed),
            self.proxy_hits.load(Ordering::Relaxed),
            self.concats.load(Ordering::Relaxed),
            self.throttle_wait_us.load(Ordering::Relaxed),
        )
    }
}

/// Storage tier an object currently lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Hot SSD tier (fresh checkpoints; evaluation tasks read from here).
    Ssd,
    /// Cold HDD tier (older checkpoints kept for traceability).
    Hdd,
}

struct Object {
    data: Bytes,
    tier: Tier,
    last_access: Instant,
}

struct NameNode {
    /// QPS token bucket state: (tokens, last refill).
    bucket: Mutex<(f64, Instant)>,
    /// Serial-concat lock (held across the whole concat when
    /// `parallel_concat` is false).
    concat_lock: Mutex<()>,
    stats: NameNodeStats,
}

impl NameNode {
    fn new() -> NameNode {
        NameNode {
            bucket: Mutex::new((0.0, Instant::now())),
            concat_lock: Mutex::new(()),
            stats: NameNodeStats::default(),
        }
    }

    /// Pay for one metadata operation: QPS throttle + latency.
    fn meta_op(&self, cfg: &HdfsConfig) {
        self.stats.meta_ops.fetch_add(1, Ordering::Relaxed);
        if let Some(qps) = cfg.meta_qps_limit {
            let wait = {
                let mut bucket = self.bucket.lock();
                let (ref mut tokens, ref mut last) = *bucket;
                let now = Instant::now();
                // Deficit-based limiter: tokens may go negative; each op
                // consumes one and sleeps off its share of the deficit, so
                // sustained throughput converges to exactly `qps`.
                *tokens = (*tokens + now.duration_since(*last).as_secs_f64() * qps as f64).min(1.0);
                *last = now;
                *tokens -= 1.0;
                if *tokens < 0.0 {
                    Duration::from_secs_f64(-*tokens / qps as f64)
                } else {
                    Duration::ZERO
                }
            };
            if !wait.is_zero() {
                self.stats.throttle_wait_us.fetch_add(wait.as_micros() as u64, Ordering::Relaxed);
                std::thread::sleep(wait);
            }
        }
        if !cfg.meta_latency.is_zero() {
            std::thread::sleep(cfg.meta_latency);
        }
    }
}

/// The simulated HDFS backend. Cheap to share: wrap in `Arc`.
pub struct HdfsBackend {
    cfg: HdfsConfig,
    namenode: NameNode,
    objects: RwLock<BTreeMap<String, Object>>,
    /// NNProxy metadata cache: path -> size (None = known-absent).
    proxy_cache: Mutex<BTreeMap<String, Option<u64>>>,
}

impl HdfsBackend {
    /// Create a cluster with the given configuration.
    pub fn new(cfg: HdfsConfig) -> HdfsBackend {
        HdfsBackend {
            cfg,
            namenode: NameNode::new(),
            objects: RwLock::new(BTreeMap::new()),
            proxy_cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Create with defaults (fast metadata, parallel concat, proxy on).
    pub fn with_defaults() -> HdfsBackend {
        HdfsBackend::new(HdfsConfig::default())
    }

    /// NameNode statistics for storage-side monitoring.
    pub fn namenode_stats(&self) -> &NameNodeStats {
        &self.namenode.stats
    }

    /// Tier an object currently resides on.
    pub fn tier_of(&self, path: &str) -> Result<Tier> {
        self.objects
            .read()
            .get(path)
            .map(|o| o.tier)
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    /// Run one cool-down pass: migrate every SSD object whose last access
    /// is older than the retention threshold to HDD. Paths are preserved
    /// ("remap ... through pure metadata operations"), so readers notice
    /// nothing. Returns the number of objects migrated.
    pub fn cool_down(&self) -> usize {
        self.namenode.meta_op(&self.cfg);
        let now = Instant::now();
        let mut migrated = 0;
        for obj in self.objects.write().values_mut() {
            if obj.tier == Tier::Ssd
                && now.duration_since(obj.last_access) >= self.cfg.cooldown_retention
            {
                obj.tier = Tier::Hdd;
                migrated += 1;
            }
        }
        migrated
    }

    /// Force an object's last-access far into the past (tests).
    pub fn age_object(&self, path: &str, by: Duration) -> Result<()> {
        let mut objects = self.objects.write();
        let obj = objects.get_mut(path).ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        obj.last_access = obj.last_access.checked_sub(by).unwrap_or(obj.last_access);
        Ok(())
    }

    fn invalidate_proxy(&self, path: &str) {
        if self.cfg.nnproxy_cache {
            self.proxy_cache.lock().remove(path);
        }
    }

    /// Size lookup through the NNProxy: cache hit skips the NameNode.
    fn proxied_size(&self, path: &str) -> Option<u64> {
        if !self.cfg.nnproxy_cache {
            self.namenode.meta_op(&self.cfg);
            return self.objects.read().get(path).map(|o| o.data.len() as u64);
        }
        {
            let cache = self.proxy_cache.lock();
            if let Some(entry) = cache.get(path) {
                self.namenode.stats.proxy_hits.fetch_add(1, Ordering::Relaxed);
                return *entry;
            }
        }
        self.namenode.meta_op(&self.cfg);
        let result = self.objects.read().get(path).map(|o| o.data.len() as u64);
        self.proxy_cache.lock().insert(path.to_string(), result);
        result
    }
}

impl StorageBackend for HdfsBackend {
    fn name(&self) -> &str {
        "hdfs"
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        vec![
            ("parallel_concat", self.cfg.parallel_concat.to_string()),
            ("nnproxy_cache", self.cfg.nnproxy_cache.to_string()),
            ("meta_ops", self.namenode.stats.meta_ops.load(Ordering::Relaxed).to_string()),
        ]
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        // Create = one metadata op (the paper's §6.4 lesson: avoid the SDK's
        // redundant parent-dir checks; we charge exactly one op).
        self.namenode.meta_op(&self.cfg);
        self.objects.write().insert(
            path.to_string(),
            Object { data, tier: Tier::Ssd, last_access: Instant::now() },
        );
        self.invalidate_proxy(path);
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.namenode.meta_op(&self.cfg);
        let mut objects = self.objects.write();
        let obj = objects.entry(path.to_string()).or_insert_with(|| Object {
            data: Bytes::new(),
            tier: Tier::Ssd,
            last_access: Instant::now(),
        });
        let mut buf = BytesMut::with_capacity(obj.data.len() + data.len());
        buf.extend_from_slice(&obj.data);
        buf.extend_from_slice(data);
        obj.data = buf.freeze();
        obj.last_access = Instant::now();
        drop(objects);
        self.invalidate_proxy(path);
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        // Open = one metadata op; the data path bypasses the NameNode.
        self.namenode.meta_op(&self.cfg);
        let mut objects = self.objects.write();
        let obj = objects.get_mut(path).ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        obj.last_access = Instant::now();
        Ok(obj.data.clone())
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        // Ranged reads are the multi-threaded download fast path: no
        // NameNode op per chunk (block locations are cached client-side).
        let objects = self.objects.read();
        let obj = objects.get(path).ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        let size = obj.data.len() as u64;
        if offset + len > size {
            return Err(StorageError::RangeOutOfBounds {
                path: path.to_string(),
                size,
                offset,
                len,
            });
        }
        Ok(obj.data.slice(offset as usize..(offset + len) as usize))
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.proxied_size(path).ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.proxied_size(path).is_some())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.namenode.meta_op(&self.cfg);
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.namenode.meta_op(&self.cfg);
        self.invalidate_proxy(path);
        self.objects
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.namenode.meta_op(&self.cfg);
        self.invalidate_proxy(from);
        self.invalidate_proxy(to);
        let mut objects = self.objects.write();
        let obj = objects.remove(from).ok_or_else(|| StorageError::NotFound(from.to_string()))?;
        objects.insert(to.to_string(), obj);
        Ok(())
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.namenode.stats.concats.fetch_add(1, Ordering::Relaxed);
        // Metadata-level merge. Serial mode holds the NameNode-wide lock for
        // the entire operation (the §6.4 bottleneck); parallel mode only
        // pays its own metadata latency.
        let _guard =
            if self.cfg.parallel_concat { None } else { Some(self.namenode.concat_lock.lock()) };
        // One metadata op per participating file plus one for the target —
        // concat cost scales with the number of sub-files.
        for _ in 0..=parts.len() {
            self.namenode.meta_op(&self.cfg);
        }
        {
            let mut objects = self.objects.write();
            let mut buf = BytesMut::new();
            for p in parts {
                let obj = objects.get(p).ok_or_else(|| StorageError::NotFound(p.clone()))?;
                buf.extend_from_slice(&obj.data);
            }
            for p in parts {
                objects.remove(p);
            }
            objects.insert(
                target.to_string(),
                Object { data: buf.freeze(), tier: Tier::Ssd, last_access: Instant::now() },
            );
        }
        for p in parts {
            self.invalidate_proxy(p);
        }
        self.invalidate_proxy(target);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> HdfsBackend {
        HdfsBackend::new(HdfsConfig {
            meta_latency: Duration::ZERO,
            meta_qps_limit: None,
            parallel_concat: true,
            nnproxy_cache: true,
            cooldown_retention: Duration::from_millis(10),
        })
    }

    #[test]
    fn conformance() {
        crate::conformance::run_all(&fast());
    }

    #[test]
    fn nnproxy_cache_absorbs_repeat_metadata_queries() {
        let h = fast();
        h.write("ckpt/file", Bytes::from_static(b"abc")).unwrap();
        let (ops0, hits0, _, _) = h.namenode_stats().snapshot();
        for _ in 0..10 {
            assert_eq!(h.size("ckpt/file").unwrap(), 3);
        }
        let (ops1, hits1, _, _) = h.namenode_stats().snapshot();
        assert_eq!(ops1 - ops0, 1, "only the first size() should hit the NameNode");
        assert_eq!(hits1 - hits0, 9);
    }

    #[test]
    fn proxy_cache_invalidated_on_write() {
        let h = fast();
        h.write("f", Bytes::from_static(b"1")).unwrap();
        assert_eq!(h.size("f").unwrap(), 1);
        h.write("f", Bytes::from_static(b"22")).unwrap();
        assert_eq!(h.size("f").unwrap(), 2, "stale proxy entry must be invalidated");
    }

    #[test]
    fn qps_throttle_delays_metadata_ops() {
        let h = HdfsBackend::new(HdfsConfig {
            meta_latency: Duration::ZERO,
            meta_qps_limit: Some(100),
            parallel_concat: true,
            nnproxy_cache: false,
            cooldown_retention: Duration::from_secs(3600),
        });
        let start = Instant::now();
        for i in 0..20 {
            h.write(&format!("f{i}"), Bytes::from_static(b"x")).unwrap();
        }
        // 20 ops at 100 QPS needs ~190ms beyond the first token.
        assert!(
            start.elapsed() >= Duration::from_millis(150),
            "throttle too weak: {:?}",
            start.elapsed()
        );
        let (_, _, _, wait) = h.namenode_stats().snapshot();
        assert!(wait > 0);
    }

    #[test]
    fn cool_down_migrates_idle_objects_and_preserves_paths() {
        let h = fast();
        h.write("old", Bytes::from_static(b"old-data")).unwrap();
        h.write("new", Bytes::from_static(b"new-data")).unwrap();
        h.age_object("old", Duration::from_secs(100)).unwrap();
        let migrated = h.cool_down();
        assert_eq!(migrated, 1);
        assert_eq!(h.tier_of("old").unwrap(), Tier::Hdd);
        assert_eq!(h.tier_of("new").unwrap(), Tier::Ssd);
        // Original path keeps working.
        assert_eq!(&h.read("old").unwrap()[..], b"old-data");
    }

    #[test]
    fn split_upload_then_concat_matches_whole_write() {
        // The §4.3 write path: split into sub-files, upload concurrently,
        // metadata-concat back into one object.
        let h = std::sync::Arc::new(fast());
        let payload: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        let chunk = payload.len() / 4;
        let mut handles = Vec::new();
        for i in 0..4 {
            let h = h.clone();
            let part = Bytes::copy_from_slice(&payload[i * chunk..(i + 1) * chunk]);
            handles.push(std::thread::spawn(move || {
                h.write(&format!("up/file.part{i}"), part).unwrap();
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        let parts: Vec<String> = (0..4).map(|i| format!("up/file.part{i}")).collect();
        h.concat("up/file", &parts).unwrap();
        assert_eq!(&h.read("up/file").unwrap()[..], &payload[..]);
        assert!(h.list("up/").unwrap() == vec!["up/file".to_string()]);
    }

    #[test]
    fn serial_concat_serializes() {
        // Two concats in serial mode cannot overlap; with per-op latency L
        // and k parts each, total time >= 2 * (k+1) * L.
        let h = std::sync::Arc::new(HdfsBackend::new(HdfsConfig {
            meta_latency: Duration::from_millis(5),
            meta_qps_limit: None,
            parallel_concat: false,
            nnproxy_cache: false,
            cooldown_retention: Duration::from_secs(3600),
        }));
        for j in 0..2 {
            for i in 0..4 {
                h.write(&format!("s{j}/p{i}"), Bytes::from_static(b"z")).unwrap();
            }
        }
        let start = Instant::now();
        let mut handles = Vec::new();
        for j in 0..2 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                let parts: Vec<String> = (0..4).map(|i| format!("s{j}/p{i}")).collect();
                h.concat(&format!("s{j}/merged"), &parts).unwrap();
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        // Each concat: 5 meta ops * 5ms = 25ms; serial => >= 50ms.
        assert!(start.elapsed() >= Duration::from_millis(45), "got {:?}", start.elapsed());
    }

    #[test]
    fn ranged_reads_bypass_namenode() {
        let h = fast();
        h.write("big", Bytes::from(vec![7u8; 1024])).unwrap();
        let (ops0, _, _, _) = h.namenode_stats().snapshot();
        for i in 0..16 {
            let _ = h.read_range("big", i * 64, 64).unwrap();
        }
        let (ops1, _, _, _) = h.namenode_stats().snapshot();
        assert_eq!(ops1, ops0, "ranged reads must not hit the NameNode");
    }
}
