//! The in-process hot checkpoint tier (TierCheck / DataStates-LLM style):
//! a bounded ring of the last K steps' shard frame files, held in memory so
//! a recovery becomes a memory copy instead of a cold-storage read.
//!
//! Each rank owns one [`HotTier`]. On every committed save a rank inserts
//! its own files and ships a replica to `R` peers (placement decided by
//! `bcp_topology::ReplicaPlacement`, never on the source host), so any
//! single-host loss leaves at least one copy alive. On recovery the
//! survivors assemble the chosen step's files into a [`TieredReadBackend`]
//! overlay: reads hit the verified hot copies first and fall through to the
//! persistent (cold) backend on any miss.

use crate::{DynBackend, Result, StorageBackend, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// One source rank's shard files for one step, as held in the hot tier.
pub type HotFiles = Vec<(String, Bytes)>;

#[derive(Default)]
struct HotState {
    /// step → source rank → that rank's shard files.
    steps: BTreeMap<u64, HashMap<usize, HotFiles>>,
    inserts: u64,
    evictions: u64,
}

/// A bounded ring of the last K steps' hot checkpoint copies (own shards +
/// peer replicas). Thread-safe; shared between a rank's save finalize tail
/// and its recovery path, and kept alive across process restarts by the
/// harness (modeling host memory that outlives a worker process).
pub struct HotTier {
    capacity_steps: usize,
    state: Mutex<HotState>,
}

impl HotTier {
    /// A tier retaining the newest `capacity_steps` steps (minimum 1).
    pub fn new(capacity_steps: usize) -> HotTier {
        HotTier { capacity_steps: capacity_steps.max(1), state: Mutex::new(HotState::default()) }
    }

    /// Retained-step capacity.
    pub fn capacity_steps(&self) -> usize {
        self.capacity_steps
    }

    /// Insert (or replace) `source_rank`'s files for `step`, evicting the
    /// oldest steps beyond capacity.
    pub fn insert(&self, step: u64, source_rank: usize, files: HotFiles) {
        let mut s = self.state.lock();
        s.steps.entry(step).or_default().insert(source_rank, files);
        s.inserts += 1;
        while s.steps.len() > self.capacity_steps {
            let oldest = *s.steps.keys().next().expect("non-empty ring");
            s.steps.remove(&oldest);
            s.evictions += 1;
        }
    }

    /// The files `source_rank` saved at `step`, when resident.
    pub fn get(&self, step: u64, source_rank: usize) -> Option<HotFiles> {
        self.state.lock().steps.get(&step).and_then(|m| m.get(&source_rank)).cloned()
    }

    /// Source ranks with resident files for `step`, sorted.
    pub fn sources(&self, step: u64) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .state
            .lock()
            .steps
            .get(&step)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    /// Steps currently resident, oldest first.
    pub fn steps(&self) -> Vec<u64> {
        self.state.lock().steps.keys().copied().collect()
    }

    /// Total resident payload bytes.
    pub fn resident_bytes(&self) -> u64 {
        let s = self.state.lock();
        s.steps
            .values()
            .flat_map(|m| m.values())
            .flat_map(|files| files.iter().map(|(_, b)| b.len() as u64))
            .sum()
    }

    /// Drop everything — the host-loss event of the chaos harness.
    pub fn wipe(&self) {
        self.state.lock().steps.clear();
    }

    /// `(inserts, evictions)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let s = self.state.lock();
        (s.inserts, s.evictions)
    }
}

/// One read served during a tiered load, for the recovery-tier breakdown.
#[derive(Debug, Clone)]
pub struct TierHit {
    /// Object path as the engine requested it.
    pub path: String,
    /// Whether the hot overlay served it (false = cold backend).
    pub hot: bool,
    /// Bytes returned.
    pub bytes: u64,
}

/// A read-through overlay backend for the recovery ladder: reads are served
/// from a verified in-memory map of the chosen step's files when present,
/// falling through to the cold backend on any miss. Mutations always go to
/// the cold backend (the hot tier is maintained by the save path, not
/// through this wrapper). Every read is logged with the tier that served it.
pub struct TieredReadBackend {
    hot: HashMap<String, Bytes>,
    cold: DynBackend,
    hits: Mutex<Vec<TierHit>>,
    hot_bytes: AtomicU64,
    cold_bytes: AtomicU64,
}

impl TieredReadBackend {
    /// Overlay `hot` (full object paths → verified file bytes) over `cold`.
    pub fn new(hot: HashMap<String, Bytes>, cold: DynBackend) -> TieredReadBackend {
        TieredReadBackend {
            hot,
            cold,
            hits: Mutex::new(Vec::new()),
            hot_bytes: AtomicU64::new(0),
            cold_bytes: AtomicU64::new(0),
        }
    }

    /// Number of objects resident in the hot overlay.
    pub fn hot_objects(&self) -> usize {
        self.hot.len()
    }

    /// Every read served so far, in order.
    pub fn tier_log(&self) -> Vec<TierHit> {
        self.hits.lock().clone()
    }

    /// `(hot_bytes, cold_bytes)` served so far.
    pub fn bytes_served(&self) -> (u64, u64) {
        (self.hot_bytes.load(Ordering::Relaxed), self.cold_bytes.load(Ordering::Relaxed))
    }

    fn record(&self, path: &str, hot: bool, bytes: u64) {
        if hot {
            self.hot_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.cold_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        self.hits.lock().push(TierHit { path: path.to_string(), hot, bytes });
    }
}

impl StorageBackend for TieredReadBackend {
    fn name(&self) -> &str {
        self.cold.name()
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        let mut attrs = self.cold.op_attrs();
        attrs.push(("hot_overlay_objects", self.hot.len().to_string()));
        attrs
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.cold.write(path, data)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        self.cold.write_segments(path, segments)
    }

    fn zero_copy_reads(&self) -> bool {
        // Hot reads are zero-copy slices of one parent allocation per
        // object; honoring the contract also requires it of cold reads.
        self.cold.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.cold.append(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        if let Some(b) = self.hot.get(path) {
            self.record(path, true, b.len() as u64);
            return Ok(b.clone());
        }
        let b = self.cold.read(path)?;
        self.record(path, false, b.len() as u64);
        Ok(b)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        if let Some(b) = self.hot.get(path) {
            let (off, l) = (offset as usize, len as usize);
            if off.checked_add(l).is_none_or(|end| end > b.len()) {
                return Err(StorageError::RangeOutOfBounds {
                    path: path.to_string(),
                    size: b.len() as u64,
                    offset,
                    len,
                });
            }
            self.record(path, true, len);
            return Ok(b.slice(off..off + l));
        }
        let b = self.cold.read_range(path, offset, len)?;
        self.record(path, false, b.len() as u64);
        Ok(b)
    }

    fn size(&self, path: &str) -> Result<u64> {
        match self.hot.get(path) {
            Some(b) => Ok(b.len() as u64),
            None => self.cold.size(path),
        }
    }

    fn exists(&self, path: &str) -> Result<bool> {
        if self.hot.contains_key(path) {
            return Ok(true);
        }
        self.cold.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = self.cold.list(prefix)?;
        for p in self.hot.keys() {
            if p.starts_with(prefix) && !out.contains(p) {
                out.push(p.clone());
            }
        }
        out.sort();
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.cold.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.cold.rename(from, to)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.cold.concat(target, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;

    fn files(tag: &str) -> HotFiles {
        vec![(format!("model_{tag}.bin"), Bytes::from(format!("payload-{tag}")))]
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let tier = HotTier::new(2);
        tier.insert(1, 0, files("a"));
        tier.insert(2, 0, files("b"));
        tier.insert(3, 0, files("c"));
        assert_eq!(tier.steps(), vec![2, 3]);
        assert!(tier.get(1, 0).is_none());
        assert!(tier.get(3, 0).is_some());
        assert_eq!(tier.stats(), (3, 1));
    }

    #[test]
    fn replicas_of_multiple_sources_coexist_per_step() {
        let tier = HotTier::new(2);
        tier.insert(5, 0, files("own"));
        tier.insert(5, 3, files("peer"));
        assert_eq!(tier.sources(5), vec![0, 3]);
        assert_eq!(tier.get(5, 3).unwrap()[0].1, Bytes::from("payload-peer"));
        assert!(tier.resident_bytes() > 0);
        tier.wipe();
        assert!(tier.sources(5).is_empty());
        assert_eq!(tier.resident_bytes(), 0);
    }

    #[test]
    fn tiered_reads_prefer_hot_and_fall_through_cold() {
        let cold: DynBackend = Arc::new(MemoryBackend::new());
        cold.write("step_1/model_0.bin", Bytes::from_static(b"cold-bytes")).unwrap();
        cold.write("step_1/meta.json", Bytes::from_static(b"meta")).unwrap();
        let mut hot = HashMap::new();
        hot.insert("step_1/model_0.bin".to_string(), Bytes::from_static(b"hot-bytes!"));
        let t = TieredReadBackend::new(hot, cold);
        assert_eq!(&t.read("step_1/model_0.bin").unwrap()[..], b"hot-bytes!");
        assert_eq!(&t.read("step_1/meta.json").unwrap()[..], b"meta");
        assert_eq!(&t.read_range("step_1/model_0.bin", 0, 3).unwrap()[..], b"hot");
        let log = t.tier_log();
        assert_eq!(log.len(), 3);
        assert!(log[0].hot && !log[1].hot && log[2].hot);
        let (hot_b, cold_b) = t.bytes_served();
        assert_eq!(hot_b, 13);
        assert_eq!(cold_b, 4);
    }

    #[test]
    fn hot_range_reads_are_bounds_checked() {
        let cold: DynBackend = Arc::new(MemoryBackend::new());
        let mut hot = HashMap::new();
        hot.insert("f".to_string(), Bytes::from_static(b"abc"));
        let t = TieredReadBackend::new(hot, cold);
        assert!(matches!(t.read_range("f", 2, 5), Err(StorageError::RangeOutOfBounds { .. })));
        assert_eq!(t.size("f").unwrap(), 3);
        assert!(t.exists("f").unwrap());
    }

    #[test]
    fn listing_merges_hot_overlay_paths() {
        let cold: DynBackend = Arc::new(MemoryBackend::new());
        cold.write("p/cold.bin", Bytes::from_static(b"x")).unwrap();
        let mut hot = HashMap::new();
        hot.insert("p/hot.bin".to_string(), Bytes::from_static(b"y"));
        let t = TieredReadBackend::new(hot, cold);
        assert_eq!(t.list("p/").unwrap(), vec!["p/cold.bin".to_string(), "p/hot.bin".to_string()]);
    }
}
