//! Checkpoint-path URIs.
//!
//! "The Engine analyzes the given checkpoint path to determine the
//! appropriate storage backend" (§3.1). Users address checkpoints as
//! `scheme://location/key`, e.g. `hdfs://cluster-a/ckpts/job1/step_100` or
//! `file:///tmp/debug-ckpt`; this module parses those into a scheme plus a
//! backend-relative key.

use crate::{Result, StorageError};
use serde::{Deserialize, Serialize};

/// Storage scheme of a checkpoint URI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// In-memory storage (`mem://`).
    Memory,
    /// Local disk (`file://`).
    File,
    /// HDFS cluster (`hdfs://`).
    Hdfs,
    /// NAS mount (`nas://`).
    Nas,
}

impl Scheme {
    /// Canonical scheme string.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Memory => "mem",
            Scheme::File => "file",
            Scheme::Hdfs => "hdfs",
            Scheme::Nas => "nas",
        }
    }
}

/// A parsed checkpoint URI: scheme, authority (cluster/host, may be empty),
/// and slash-separated key.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StorageUri {
    /// Which backend family handles this path.
    pub scheme: Scheme,
    /// Cluster / host part (informational; selects among registered
    /// backends of a scheme).
    pub authority: String,
    /// Object-key prefix for the checkpoint.
    pub key: String,
}

impl StorageUri {
    /// Parse `scheme://authority/key`. A bare path with no scheme defaults
    /// to `file://` (the paper's "local disk for debugging" convention).
    pub fn parse(s: &str) -> Result<StorageUri> {
        let (scheme, rest) = match s.split_once("://") {
            Some((sch, rest)) => {
                let scheme = match sch {
                    "mem" | "memory" => Scheme::Memory,
                    "file" | "local" => Scheme::File,
                    "hdfs" => Scheme::Hdfs,
                    "nas" => Scheme::Nas,
                    other => {
                        return Err(StorageError::Io(format!("unknown storage scheme {other:?}")))
                    }
                };
                (scheme, rest)
            }
            None => (Scheme::File, s),
        };
        let (authority, key) = match scheme {
            // file:///abs/path -> empty authority, key "abs/path"
            Scheme::File => ("".to_string(), rest.trim_start_matches('/').to_string()),
            _ => match rest.split_once('/') {
                Some((auth, key)) => (auth.to_string(), key.trim_matches('/').to_string()),
                None => (rest.to_string(), String::new()),
            },
        };
        if key.is_empty() {
            return Err(StorageError::Io(format!("checkpoint URI {s:?} has an empty key")));
        }
        Ok(StorageUri { scheme, authority, key })
    }

    /// Join a sub-path onto this URI's key.
    pub fn join(&self, sub: &str) -> StorageUri {
        let mut key = self.key.trim_end_matches('/').to_string();
        key.push('/');
        key.push_str(sub.trim_start_matches('/'));
        StorageUri { scheme: self.scheme, authority: self.authority.clone(), key }
    }
}

impl std::fmt::Display for StorageUri {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}/{}", self.scheme.as_str(), self.authority, self.key)
    }
}

/// A validated checkpoint address: a [`StorageUri`] that is known to have
/// parsed successfully.
///
/// Save/load requests take `impl Into<CheckpointLocation>`, so malformed
/// URIs surface at request *construction* — in the trainer's code, with a
/// clear panic message — rather than mid-save deep inside the engine. Use
/// [`CheckpointLocation::parse`] (or `str::parse`) for the fallible form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckpointLocation {
    uri: StorageUri,
}

impl CheckpointLocation {
    /// Fallible construction from a URI string.
    pub fn parse(s: &str) -> Result<CheckpointLocation> {
        StorageUri::parse(s).map(|uri| CheckpointLocation { uri })
    }

    /// The validated URI.
    pub fn uri(&self) -> &StorageUri {
        &self.uri
    }

    /// Join a sub-path onto this location's key.
    pub fn join(&self, sub: &str) -> CheckpointLocation {
        CheckpointLocation { uri: self.uri.join(sub) }
    }
}

impl From<StorageUri> for CheckpointLocation {
    fn from(uri: StorageUri) -> CheckpointLocation {
        CheckpointLocation { uri }
    }
}

impl From<&StorageUri> for CheckpointLocation {
    fn from(uri: &StorageUri) -> CheckpointLocation {
        CheckpointLocation { uri: uri.clone() }
    }
}

impl From<&str> for CheckpointLocation {
    /// Panics on a malformed URI — the error belongs at the construction
    /// site, not mid-save. Use [`CheckpointLocation::parse`] to handle it.
    fn from(s: &str) -> CheckpointLocation {
        match CheckpointLocation::parse(s) {
            Ok(loc) => loc,
            Err(e) => panic!("invalid checkpoint location {s:?}: {e}"),
        }
    }
}

impl From<String> for CheckpointLocation {
    fn from(s: String) -> CheckpointLocation {
        CheckpointLocation::from(s.as_str())
    }
}

impl From<&String> for CheckpointLocation {
    fn from(s: &String) -> CheckpointLocation {
        CheckpointLocation::from(s.as_str())
    }
}

impl std::str::FromStr for CheckpointLocation {
    type Err = StorageError;

    fn from_str(s: &str) -> Result<CheckpointLocation> {
        CheckpointLocation::parse(s)
    }
}

impl std::fmt::Display for CheckpointLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.uri.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_schemes() {
        let u = StorageUri::parse("hdfs://cluster-a/ckpts/job1/step_100").unwrap();
        assert_eq!(u.scheme, Scheme::Hdfs);
        assert_eq!(u.authority, "cluster-a");
        assert_eq!(u.key, "ckpts/job1/step_100");

        let u = StorageUri::parse("mem://gemini/job2").unwrap();
        assert_eq!(u.scheme, Scheme::Memory);
        assert_eq!(u.key, "job2");

        let u = StorageUri::parse("file:///tmp/debug").unwrap();
        assert_eq!(u.scheme, Scheme::File);
        assert_eq!(u.authority, "");
        assert_eq!(u.key, "tmp/debug");

        let u = StorageUri::parse("nas://mount1/ckpt").unwrap();
        assert_eq!(u.scheme, Scheme::Nas);
    }

    #[test]
    fn bare_path_defaults_to_file() {
        let u = StorageUri::parse("some/relative/ckpt").unwrap();
        assert_eq!(u.scheme, Scheme::File);
        assert_eq!(u.key, "some/relative/ckpt");
    }

    #[test]
    fn errors_on_unknown_scheme_and_empty_key() {
        assert!(StorageUri::parse("s3://bucket/key").is_err());
        assert!(StorageUri::parse("hdfs://cluster-only").is_err());
    }

    #[test]
    fn location_validates_at_construction() {
        let loc = CheckpointLocation::from("hdfs://cluster-a/job/step_5");
        assert_eq!(loc.uri().key, "job/step_5");
        assert_eq!(loc.to_string(), "hdfs://cluster-a/job/step_5");
        assert_eq!(loc.join("COMPLETE").uri().key, "job/step_5/COMPLETE");
        assert!(CheckpointLocation::parse("s3://nope/x").is_err());
        assert!("mem://a/b".parse::<CheckpointLocation>().is_ok());
        let from_uri: CheckpointLocation = StorageUri::parse("mem://a/b").unwrap().into();
        assert_eq!(from_uri.uri().scheme, Scheme::Memory);
    }

    #[test]
    #[should_panic(expected = "invalid checkpoint location")]
    fn location_from_malformed_str_panics() {
        let _ = CheckpointLocation::from("s3://bucket/key");
    }

    #[test]
    fn join_builds_subkeys() {
        let u = StorageUri::parse("hdfs://c/base").unwrap();
        assert_eq!(u.join("model_0.bin").key, "base/model_0.bin");
        assert_eq!(u.join("/model_0.bin").key, "base/model_0.bin");
        assert_eq!(u.to_string(), "hdfs://c/base");
    }
}
