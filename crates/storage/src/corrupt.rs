//! Corruption injection: a seeded backend wrapper that damages checkpoint
//! data deterministically — single-bit flips, truncation, and stale-file
//! substitution — either *at rest* (the stored object is mutated in place,
//! modeling silent media corruption) or *on read* (the stored bytes stay
//! intact but a reader sees damaged data, modeling a bad NIC/page-cache
//! path). Determinism comes from a caller-supplied seed mixed with the
//! object path, so a failing exploration run reproduces exactly.

use crate::{DynBackend, Result, StorageBackend, StorageError};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// What kind of damage to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Flip one bit at a seed-derived position.
    BitFlip,
    /// Truncate to a seed-derived shorter length.
    Truncate,
    /// Substitute a previously snapshotted (stale) version of the object.
    Stale,
}

/// A backend wrapper that injects deterministic corruption.
pub struct CorruptingBackend {
    inner: DynBackend,
    seed: u64,
    /// (path substring, kind) rules applied to `read`/`read_range` results.
    read_rules: Mutex<Vec<(String, Corruption)>>,
    /// Saved object versions for [`Corruption::Stale`].
    snapshots: Mutex<BTreeMap<String, Bytes>>,
    injected: AtomicU64,
}

impl CorruptingBackend {
    /// Wrap `inner`; `seed` drives every corruption position.
    pub fn new(inner: DynBackend, seed: u64) -> CorruptingBackend {
        CorruptingBackend {
            inner,
            seed,
            read_rules: Mutex::new(Vec::new()),
            snapshots: Mutex::new(BTreeMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Number of corruptions injected so far (at rest + on read).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Register on-read corruption for every path containing `substring`.
    pub fn corrupt_reads(&self, substring: &str, kind: Corruption) {
        self.read_rules.lock().push((substring.to_string(), kind));
    }

    /// Snapshot the current content of `path` for later stale substitution.
    pub fn snapshot(&self, path: &str) -> Result<()> {
        let data = self.inner.read(path)?;
        self.snapshots.lock().insert(path.to_string(), data);
        Ok(())
    }

    /// Flip one seed-derived bit of the stored object, in place. Returns
    /// the flipped bit index.
    pub fn flip_bit_at_rest(&self, path: &str) -> Result<u64> {
        let data = self.inner.read(path)?;
        if data.is_empty() {
            return Err(StorageError::Io(format!("cannot flip a bit in empty object {path}")));
        }
        let bit = self.derive(path) % (data.len() as u64 * 8);
        let mut buf = data.to_vec();
        buf[(bit / 8) as usize] ^= 1 << (bit % 8);
        self.inner.write(path, Bytes::from(buf))?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        Ok(bit)
    }

    /// Truncate the stored object to a seed-derived strictly shorter
    /// length, in place. Returns the new length.
    pub fn truncate_at_rest(&self, path: &str) -> Result<u64> {
        let data = self.inner.read(path)?;
        if data.is_empty() {
            return Err(StorageError::Io(format!("cannot truncate empty object {path}")));
        }
        let keep = self.derive(path) % data.len() as u64;
        self.inner.write(path, data.slice(0..keep as usize))?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        Ok(keep)
    }

    /// Replace the stored object with its snapshotted (stale) version.
    pub fn substitute_stale(&self, path: &str) -> Result<()> {
        let stale = self
            .snapshots
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(format!("no snapshot for {path}")))?;
        self.inner.write(path, stale)?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Seed-and-path-derived pseudo-random value (splitmix64 over an
    /// FNV-1a path hash), stable across runs.
    fn derive(&self, path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = self.seed ^ h;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn rule_for(&self, path: &str) -> Option<Corruption> {
        self.read_rules
            .lock()
            .iter()
            .find(|(sub, _)| path.contains(sub.as_str()))
            .map(|(_, kind)| *kind)
    }

    fn damage(&self, path: &str, data: Bytes, kind: Corruption) -> Bytes {
        let out = match kind {
            Corruption::BitFlip => {
                if data.is_empty() {
                    return data;
                }
                let bit = self.derive(path) % (data.len() as u64 * 8);
                let mut buf = data.to_vec();
                buf[(bit / 8) as usize] ^= 1 << (bit % 8);
                Bytes::from(buf)
            }
            Corruption::Truncate => {
                if data.is_empty() {
                    return data;
                }
                let keep = self.derive(path) % data.len() as u64;
                data.slice(0..keep as usize)
            }
            Corruption::Stale => match self.snapshots.lock().get(path) {
                Some(stale) => stale.clone(),
                None => return data,
            },
        };
        self.injected.fetch_add(1, Ordering::Relaxed);
        out
    }
}

impl StorageBackend for CorruptingBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.inner.write(path, data)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        self.inner.write_segments(path, segments)
    }

    fn zero_copy_reads(&self) -> bool {
        // Damaged reads may re-allocate; never promise stitchable views.
        false
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.inner.append(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        let data = self.inner.read(path)?;
        match self.rule_for(path) {
            Some(kind) => Ok(self.damage(path, data, kind)),
            None => Ok(data),
        }
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let data = self.inner.read_range(path, offset, len)?;
        match self.rule_for(path) {
            Some(kind) => Ok(self.damage(path, data, kind)),
            None => Ok(data),
        }
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.inner.concat(target, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;

    fn corrupting(seed: u64) -> CorruptingBackend {
        CorruptingBackend::new(Arc::new(MemoryBackend::new()), seed)
    }

    #[test]
    fn passes_conformance_with_no_rules() {
        crate::conformance::run_all(&corrupting(7));
    }

    #[test]
    fn bit_flip_at_rest_is_deterministic_and_single_bit() {
        let payload = Bytes::from_static(b"checkpoint shard payload");
        let (a, b) = (corrupting(42), corrupting(42));
        for c in [&a, &b] {
            c.write("s/shard.bin", payload.clone()).unwrap();
        }
        let bit_a = a.flip_bit_at_rest("s/shard.bin").unwrap();
        let bit_b = b.flip_bit_at_rest("s/shard.bin").unwrap();
        assert_eq!(bit_a, bit_b, "same seed + path must flip the same bit");
        let damaged = a.read("s/shard.bin").unwrap();
        let diff: u32 = payload.iter().zip(damaged.iter()).map(|(x, y)| (x ^ y).count_ones()).sum();
        assert_eq!(diff, 1, "exactly one bit differs");
        assert_eq!(a.injected(), 1);
    }

    #[test]
    fn different_seed_flips_a_different_bit() {
        let payload = Bytes::from(vec![0u8; 4096]);
        let (a, b) = (corrupting(1), corrupting(2));
        for c in [&a, &b] {
            c.write("f", payload.clone()).unwrap();
        }
        assert_ne!(a.flip_bit_at_rest("f").unwrap(), b.flip_bit_at_rest("f").unwrap());
    }

    #[test]
    fn truncate_at_rest_shrinks_object() {
        let c = corrupting(3);
        c.write("t", Bytes::from(vec![9u8; 100])).unwrap();
        let keep = c.truncate_at_rest("t").unwrap();
        assert!(keep < 100);
        assert_eq!(c.size("t").unwrap(), keep);
    }

    #[test]
    fn stale_substitution_restores_snapshot() {
        let c = corrupting(4);
        c.write("v", Bytes::from_static(b"version1")).unwrap();
        c.snapshot("v").unwrap();
        c.write("v", Bytes::from_static(b"version2")).unwrap();
        c.substitute_stale("v").unwrap();
        assert_eq!(&c.read("v").unwrap()[..], b"version1");
    }

    #[test]
    fn on_read_rules_leave_stored_bytes_intact() {
        let c = corrupting(5);
        c.write("r/shard", Bytes::from_static(b"pristine bytes")).unwrap();
        c.corrupt_reads("shard", Corruption::BitFlip);
        let seen = c.read("r/shard").unwrap();
        assert_ne!(&seen[..], b"pristine bytes");
        // A second corrupting backend over the same store sees clean bytes.
        let clean = CorruptingBackend::new(Arc::new(MemoryBackend::new()), 5);
        clean.write("r/shard", Bytes::from_static(b"pristine bytes")).unwrap();
        assert_eq!(&clean.read("r/shard").unwrap()[..], b"pristine bytes");
        // Reads are repeatable: same damage every time.
        assert_eq!(&c.read("r/shard").unwrap()[..], &seen[..]);
    }

    #[test]
    fn on_read_truncation_applies_to_ranges() {
        let c = corrupting(6);
        c.write("x", Bytes::from(vec![7u8; 64])).unwrap();
        c.corrupt_reads("x", Corruption::Truncate);
        assert!(c.read_range("x", 0, 64).unwrap().len() < 64);
    }
}
