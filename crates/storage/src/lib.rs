//! # bcp-storage — storage backends for checkpoint persistence
//!
//! The paper's Storage I/O layer "encapsulates different storage backends
//! and manages backend-specific read/write operations and optimizations",
//! with a unified interface toward the execution engine (Fig. 4). This crate
//! provides that interface, [`StorageBackend`], and the backends:
//!
//! * [`MemoryBackend`] — in-memory object store. Doubles as the engine's
//!   shared-memory staging area (the paper's `/dev/shm` dump target) and as
//!   Gemini-style in-memory checkpoint storage.
//! * [`DiskBackend`] — real files under a root directory (debugging-scale
//!   jobs and all integration tests).
//! * [`hdfs::HdfsBackend`] — a simulated HDFS: append-only files, a
//!   NameNode with per-metadata-op latency, QPS throttling and
//!   (configurable) serial vs. parallel concat, an NNProxy metadata cache,
//!   sub-file concatenation (§4.3), and SSD→HDD cool-down tiering (§5.1).
//! * [`throttle::Throttled`] — wraps any backend with bandwidth/latency
//!   profiles (used to model NAS and to make monitoring output realistic).
//! * [`flaky::FlakyBackend`] — failure injection for upload/download retry
//!   tests (Appendix B).
//! * [`journal::JournalBackend`] — mutation journal that materializes
//!   arbitrary post-crash storage states (log prefixes + torn final writes)
//!   for the crash-consistency explorer.
//! * [`corrupt::CorruptingBackend`] — seeded bit flips, truncation and
//!   stale-file substitution, at rest or on read.
//! * [`fallback::FallbackBackend`] — graceful degradation: writes fail over
//!   to a secondary tier after repeated primary failures, with the downgrade
//!   observable for failure logging and metrics.
//! * [`governor::GovernedBackend`] — tags every transfer with a job name
//!   and admits it through a [`governor::BandwidthGovernor`] (the
//!   coordinator's cross-job bandwidth scheduling choke point).
//! * [`hot::HotTier`] / [`hot::TieredReadBackend`] — the in-process hot
//!   checkpoint tier (bounded ring of the last K steps, peer-replicated)
//!   and the read-through overlay the recovery ladder loads through.
//!
//! Paths are slash-separated keys (`checkpoints/step_100/model_3.bin`).
//! URIs (`hdfs://...`, `file://...`, `mem://...`) are parsed by [`uri`] and
//! resolved to a backend by the engine, mirroring "the Engine analyzes the
//! given checkpoint path to determine the appropriate storage backend".

pub mod corrupt;
pub mod disk;
pub mod fallback;
pub mod flaky;
pub mod governor;
pub mod hdfs;
pub mod hot;
pub mod instrument;
pub mod journal;
pub mod memory;
pub mod throttle;
pub mod uri;

pub use corrupt::{CorruptingBackend, Corruption};
pub use disk::DiskBackend;
pub use fallback::{FailoverEvent, FallbackBackend};
pub use flaky::FlakyBackend;
pub use governor::{BandwidthGovernor, DynGovernor, GovernedBackend, NoopGovernor, OpClass};
pub use hdfs::{HdfsBackend, HdfsConfig, NameNodeStats};
pub use hot::{HotTier, TierHit, TieredReadBackend};
pub use instrument::InstrumentedBackend;
pub use journal::{JournalBackend, JournalOp};
pub use memory::MemoryBackend;
pub use throttle::{ThrottleProfile, Throttled};
pub use uri::{CheckpointLocation, StorageUri};

use bytes::Bytes;
use std::sync::Arc;

/// Errors produced by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The object does not exist.
    NotFound(String),
    /// The object already exists and the operation requires it not to.
    AlreadyExists(String),
    /// A read range exceeded the object size.
    RangeOutOfBounds { path: String, size: u64, offset: u64, len: u64 },
    /// Backend-specific I/O failure (message carries detail).
    Io(String),
    /// The operation is not supported by this backend (e.g. random-offset
    /// writes on append-only HDFS).
    Unsupported(&'static str),
    /// Injected failure (failure-injection wrapper).
    Injected { path: String, remaining: u32 },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotFound(p) => write!(f, "object not found: {p}"),
            StorageError::AlreadyExists(p) => write!(f, "object already exists: {p}"),
            StorageError::RangeOutOfBounds { path, size, offset, len } => write!(
                f,
                "range [{offset}, {}) out of bounds for {path} (size {size})",
                offset + len
            ),
            StorageError::Io(m) => write!(f, "storage I/O error: {m}"),
            StorageError::Unsupported(op) => write!(f, "operation not supported: {op}"),
            StorageError::Injected { path, remaining } => {
                write!(f, "injected failure on {path} ({remaining} more to come)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// The unified storage interface between the execution engine and backends.
///
/// Semantics contract:
/// * `write` atomically creates-or-replaces a whole object.
/// * `append` extends an existing object (creating it when absent) — the
///   only mutation HDFS-like backends allow besides whole-object `write`.
/// * `read_range` must be cheap and thread-safe: the engine issues many
///   concurrent ranged reads of one file (§4.3 multi-threaded download).
/// * `concat` merges `parts` (in order) into `target` and removes the
///   parts — a *metadata-level* operation on HDFS (§4.3 upload path).
/// * `rename` is atomic; the engine uses it to commit checkpoints.
pub trait StorageBackend: Send + Sync {
    /// Backend name for monitoring output ("memory", "disk", "hdfs", "nas").
    fn name(&self) -> &str;

    /// Backend-specific attributes attached to every traced operation span
    /// by [`InstrumentedBackend`] (configuration and health a trace reader
    /// needs to interpret timings — tier state, throttle profile, ...).
    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        Vec::new()
    }

    /// Create or replace the whole object at `path`.
    fn write(&self, path: &str, data: Bytes) -> Result<()>;

    /// Gather-write: create or replace the object at `path` from `segments`
    /// concatenated in order. The engine's single-copy save path hands the
    /// serialized frame headers and the pooled tensor payloads over as
    /// separate segments so backends can write them without the engine ever
    /// concatenating them into one allocation. The default implementation
    /// concatenates once and delegates to [`StorageBackend::write`]; memory
    /// and disk provide native implementations that avoid even that copy.
    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        let total: usize = segments.iter().map(Bytes::len).sum();
        let mut buf = bytes::BytesMut::with_capacity(total);
        for seg in segments {
            buf.extend_from_slice(seg);
        }
        self.write(path, buf.freeze())
    }

    /// Whether `read_range` returns zero-copy views over one stable parent
    /// allocation per object (true for memory-backed stores). Only when this
    /// contract holds may callers stitch adjacent ranged reads back together
    /// without copying; the default is conservatively `false`.
    fn zero_copy_reads(&self) -> bool {
        false
    }

    /// Append to the object at `path`, creating it if absent.
    fn append(&self, path: &str, data: &[u8]) -> Result<()>;

    /// Read the whole object.
    fn read(&self, path: &str) -> Result<Bytes>;

    /// Read `len` bytes starting at `offset`.
    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes>;

    /// Object size in bytes.
    fn size(&self, path: &str) -> Result<u64>;

    /// Whether the object exists.
    fn exists(&self, path: &str) -> Result<bool>;

    /// All object paths with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Remove the object.
    fn delete(&self, path: &str) -> Result<()>;

    /// Atomically rename an object.
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Merge `parts` in order into `target`, removing the parts.
    fn concat(&self, target: &str, parts: &[String]) -> Result<()>;
}

/// Shared, dynamically-dispatched backend handle used across engine threads.
pub type DynBackend = Arc<dyn StorageBackend>;

#[cfg(test)]
pub(crate) mod conformance {
    //! A conformance suite every backend must pass; each backend's tests
    //! call into this with a fresh instance.
    use super::*;

    pub fn run_all(b: &dyn StorageBackend) {
        whole_object_round_trip(b);
        append_semantics(b);
        ranged_reads(b);
        listing_and_delete(b);
        rename_moves(b);
        concat_merges_and_removes_parts(b);
        gather_writes(b);
        error_cases(b);
    }

    fn gather_writes(b: &dyn StorageBackend) {
        // Multi-segment (including an empty segment) concatenates in order.
        let segs = [Bytes::from_static(b"head"), Bytes::new(), Bytes::from_static(b"payload")];
        b.write_segments("g/multi", &segs).unwrap();
        assert_eq!(&b.read("g/multi").unwrap()[..], b"headpayload");
        // Single segment replaces an existing object.
        b.write_segments("g/multi", &[Bytes::from_static(b"x")]).unwrap();
        assert_eq!(&b.read("g/multi").unwrap()[..], b"x");
        // Empty segment list produces an empty object.
        b.write_segments("g/empty", &[]).unwrap();
        assert!(b.exists("g/empty").unwrap());
        assert_eq!(b.size("g/empty").unwrap(), 0);
    }

    fn whole_object_round_trip(b: &dyn StorageBackend) {
        b.write("a/b/file1", Bytes::from_static(b"hello")).unwrap();
        assert_eq!(&b.read("a/b/file1").unwrap()[..], b"hello");
        assert_eq!(b.size("a/b/file1").unwrap(), 5);
        assert!(b.exists("a/b/file1").unwrap());
        // Overwrite replaces.
        b.write("a/b/file1", Bytes::from_static(b"x")).unwrap();
        assert_eq!(b.size("a/b/file1").unwrap(), 1);
    }

    fn append_semantics(b: &dyn StorageBackend) {
        b.append("app/log", b"one").unwrap();
        b.append("app/log", b"two").unwrap();
        assert_eq!(&b.read("app/log").unwrap()[..], b"onetwo");
    }

    fn ranged_reads(b: &dyn StorageBackend) {
        b.write("r/data", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(&b.read_range("r/data", 2, 3).unwrap()[..], b"234");
        assert_eq!(&b.read_range("r/data", 0, 10).unwrap()[..], b"0123456789");
        assert_eq!(&b.read_range("r/data", 9, 1).unwrap()[..], b"9");
        assert!(matches!(b.read_range("r/data", 8, 5), Err(StorageError::RangeOutOfBounds { .. })));
    }

    fn listing_and_delete(b: &dyn StorageBackend) {
        b.write("l/x/1", Bytes::from_static(b"a")).unwrap();
        b.write("l/x/2", Bytes::from_static(b"b")).unwrap();
        b.write("l/y/3", Bytes::from_static(b"c")).unwrap();
        assert_eq!(b.list("l/x/").unwrap(), vec!["l/x/1".to_string(), "l/x/2".to_string()]);
        assert_eq!(b.list("l/").unwrap().len(), 3);
        b.delete("l/x/1").unwrap();
        assert!(!b.exists("l/x/1").unwrap());
        assert!(matches!(b.delete("l/x/1"), Err(StorageError::NotFound(_))));
    }

    fn rename_moves(b: &dyn StorageBackend) {
        b.write("mv/src", Bytes::from_static(b"payload")).unwrap();
        b.rename("mv/src", "mv/dst").unwrap();
        assert!(!b.exists("mv/src").unwrap());
        assert_eq!(&b.read("mv/dst").unwrap()[..], b"payload");
    }

    fn concat_merges_and_removes_parts(b: &dyn StorageBackend) {
        b.write("c/part0", Bytes::from_static(b"AA")).unwrap();
        b.write("c/part1", Bytes::from_static(b"BB")).unwrap();
        b.write("c/part2", Bytes::from_static(b"CC")).unwrap();
        b.concat("c/merged", &["c/part0".into(), "c/part1".into(), "c/part2".into()]).unwrap();
        assert_eq!(&b.read("c/merged").unwrap()[..], b"AABBCC");
        assert!(!b.exists("c/part0").unwrap());
        assert!(!b.exists("c/part2").unwrap());
    }

    fn error_cases(b: &dyn StorageBackend) {
        assert!(matches!(b.read("missing"), Err(StorageError::NotFound(_))));
        assert!(matches!(b.size("missing"), Err(StorageError::NotFound(_))));
        assert!(matches!(b.rename("missing", "x"), Err(StorageError::NotFound(_))));
    }
}
