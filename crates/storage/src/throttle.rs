//! Bandwidth/latency throttling wrapper.
//!
//! Wraps any backend with a transfer-rate profile so that real executions
//! exhibit realistic *relative* timing (e.g. NAS slower than local disk,
//! HDFS fast for parallel ranged reads). The monitoring demos (Fig. 11/12)
//! use this to make per-phase durations visible; correctness tests leave it
//! off. Rates are deliberately scaled-down analogues, not measurements.

use crate::{DynBackend, Result, StorageBackend};
use bytes::Bytes;
use std::time::Duration;

/// A transfer-rate profile in bytes per second plus fixed per-op latency.
#[derive(Debug, Clone, Copy)]
pub struct ThrottleProfile {
    /// Read throughput cap in bytes/second (`f64::INFINITY` = uncapped).
    pub read_bps: f64,
    /// Write throughput cap in bytes/second.
    pub write_bps: f64,
    /// Fixed latency added to every operation.
    pub op_latency: Duration,
}

impl ThrottleProfile {
    /// No throttling at all.
    pub fn unlimited() -> ThrottleProfile {
        ThrottleProfile {
            read_bps: f64::INFINITY,
            write_bps: f64::INFINITY,
            op_latency: Duration::ZERO,
        }
    }

    /// A scaled-down NAS-like profile: moderate bandwidth, noticeable
    /// per-op latency.
    pub fn nas_like() -> ThrottleProfile {
        ThrottleProfile {
            read_bps: 512.0 * 1024.0 * 1024.0,
            write_bps: 256.0 * 1024.0 * 1024.0,
            op_latency: Duration::from_micros(500),
        }
    }

    fn delay_for(&self, bytes: usize, bps: f64) -> Duration {
        let mut d = self.op_latency;
        if bps.is_finite() && bps > 0.0 {
            d += Duration::from_secs_f64(bytes as f64 / bps);
        }
        d
    }
}

/// A [`StorageBackend`] decorated with a [`ThrottleProfile`].
pub struct Throttled {
    inner: DynBackend,
    profile: ThrottleProfile,
    name: String,
}

impl Throttled {
    /// Wrap `inner` with `profile`, reporting `name` to monitoring.
    pub fn new(inner: DynBackend, profile: ThrottleProfile, name: impl Into<String>) -> Throttled {
        Throttled { inner, profile, name: name.into() }
    }
}

impl StorageBackend for Throttled {
    fn name(&self) -> &str {
        &self.name
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        let mut attrs = vec![
            ("read_bps", format!("{:.0}", self.profile.read_bps)),
            ("write_bps", format!("{:.0}", self.profile.write_bps)),
            ("op_latency_us", self.profile.op_latency.as_micros().to_string()),
        ];
        attrs.extend(self.inner.op_attrs());
        attrs
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        std::thread::sleep(self.profile.delay_for(data.len(), self.profile.write_bps));
        self.inner.write(path, data)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        let total: usize = segments.iter().map(Bytes::len).sum();
        std::thread::sleep(self.profile.delay_for(total, self.profile.write_bps));
        self.inner.write_segments(path, segments)
    }

    fn zero_copy_reads(&self) -> bool {
        self.inner.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        std::thread::sleep(self.profile.delay_for(data.len(), self.profile.write_bps));
        self.inner.append(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        let data = self.inner.read(path)?;
        std::thread::sleep(self.profile.delay_for(data.len(), self.profile.read_bps));
        Ok(data)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let data = self.inner.read_range(path, offset, len)?;
        std::thread::sleep(self.profile.delay_for(data.len(), self.profile.read_bps));
        Ok(data)
    }

    fn size(&self, path: &str) -> Result<u64> {
        std::thread::sleep(self.profile.op_latency);
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        std::thread::sleep(self.profile.op_latency);
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        std::thread::sleep(self.profile.op_latency);
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        std::thread::sleep(self.profile.op_latency);
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        std::thread::sleep(self.profile.op_latency);
        self.inner.rename(from, to)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        std::thread::sleep(self.profile.op_latency);
        self.inner.concat(target, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn conformance_with_unlimited_profile() {
        let t = Throttled::new(Arc::new(MemoryBackend::new()), ThrottleProfile::unlimited(), "nas");
        crate::conformance::run_all(&t);
        assert_eq!(t.name(), "nas");
    }

    #[test]
    fn throughput_cap_slows_transfers() {
        let profile = ThrottleProfile {
            read_bps: f64::INFINITY,
            write_bps: 1024.0 * 1024.0, // 1 MiB/s
            op_latency: Duration::ZERO,
        };
        let t = Throttled::new(Arc::new(MemoryBackend::new()), profile, "slow");
        let start = Instant::now();
        t.write("f", Bytes::from(vec![0u8; 128 * 1024])).unwrap(); // 1/8 MiB
        assert!(start.elapsed() >= Duration::from_millis(100), "got {:?}", start.elapsed());
    }
}
