//! Graceful degradation: a backend wrapper that fails writes over to a
//! secondary tier once the primary has proven itself broken.
//!
//! The paper's Appendix B keeps saves alive with retries; production
//! deployments additionally keep a *hot tier* (e.g. Gemini-style in-memory
//! storage) to absorb durable-tier outages. [`FallbackBackend`] composes the
//! two: write-class operations go to the primary until `threshold`
//! consecutive-attempt failures accumulate, after which the wrapper *trips*
//! and routes all subsequent writes to the secondary. The downgrade is
//! recorded as a [`FailoverEvent`] and reported to an optional observer so
//! the engine can log it into its `FailureLog` and `MetricsSink`.
//!
//! Reads consult both tiers (the tripped tier first), so a checkpoint whose
//! files straddle the failover boundary still loads.

use crate::{DynBackend, Result, StorageBackend};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// A recorded primary→secondary downgrade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    /// Path whose write tripped the failover.
    pub path: String,
    /// Primary-backend failures accumulated before tripping.
    pub failures: u32,
}

/// Callback invoked when the wrapper trips over to the secondary.
pub type FailoverObserver = Arc<dyn Fn(&FailoverEvent) + Send + Sync>;

/// A write-path failover wrapper: primary until `threshold` write failures,
/// secondary afterwards. See the module docs for the full contract.
pub struct FallbackBackend {
    primary: DynBackend,
    secondary: DynBackend,
    threshold: u32,
    failures: AtomicU32,
    tripped: AtomicBool,
    observer: Mutex<Option<FailoverObserver>>,
    events: Mutex<Vec<FailoverEvent>>,
}

impl FallbackBackend {
    /// Wrap `primary` with `secondary` as the degraded tier, tripping after
    /// 3 write failures (one default retry policy's worth of attempts).
    pub fn new(primary: DynBackend, secondary: DynBackend) -> FallbackBackend {
        FallbackBackend::with_threshold(primary, secondary, 3)
    }

    /// Wrap with an explicit failure threshold (must be ≥ 1).
    pub fn with_threshold(
        primary: DynBackend,
        secondary: DynBackend,
        threshold: u32,
    ) -> FallbackBackend {
        FallbackBackend {
            primary,
            secondary,
            threshold: threshold.max(1),
            failures: AtomicU32::new(0),
            tripped: AtomicBool::new(false),
            observer: Mutex::new(None),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Install a callback fired (once) at the moment the wrapper trips.
    pub fn set_observer(&self, observer: FailoverObserver) {
        *self.observer.lock() = Some(observer);
    }

    /// Whether writes are currently routed to the secondary tier.
    pub fn is_degraded(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Primary-backend write failures observed so far.
    pub fn failures(&self) -> u32 {
        self.failures.load(Ordering::Relaxed)
    }

    /// All downgrade events recorded (at most one per trip).
    pub fn events(&self) -> Vec<FailoverEvent> {
        self.events.lock().clone()
    }

    /// Run a write-class operation with failover. Before the trip, a primary
    /// failure either returns the error (letting the caller's retry policy
    /// drive the next attempt) or — when this failure reaches the threshold
    /// — trips the wrapper and completes the operation on the secondary.
    fn write_op<T>(&self, path: &str, op: impl Fn(&dyn StorageBackend) -> Result<T>) -> Result<T> {
        if self.is_degraded() {
            return op(self.secondary.as_ref());
        }
        match op(self.primary.as_ref()) {
            Ok(v) => Ok(v),
            Err(e) => {
                let seen = self.failures.fetch_add(1, Ordering::AcqRel) + 1;
                if seen >= self.threshold && !self.tripped.swap(true, Ordering::AcqRel) {
                    let event = FailoverEvent { path: path.to_string(), failures: seen };
                    self.events.lock().push(event.clone());
                    if let Some(obs) = self.observer.lock().clone() {
                        obs(&event);
                    }
                }
                if self.is_degraded() {
                    op(self.secondary.as_ref())
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Run a read-class operation: ask the tier writes currently target
    /// first, then fall back to the other tier so pre-trip files remain
    /// readable after a failover.
    fn read_op<T>(&self, op: impl Fn(&dyn StorageBackend) -> Result<T>) -> Result<T> {
        let (first, second) = if self.is_degraded() {
            (&self.secondary, &self.primary)
        } else {
            (&self.primary, &self.secondary)
        };
        op(first.as_ref()).or_else(|_| op(second.as_ref()))
    }
}

impl StorageBackend for FallbackBackend {
    fn name(&self) -> &str {
        if self.is_degraded() {
            self.secondary.name()
        } else {
            self.primary.name()
        }
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        vec![
            ("degraded", self.is_degraded().to_string()),
            ("primary_failures", self.failures().to_string()),
        ]
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.write_op(path, |b| b.write(path, data.clone()))
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        self.write_op(path, |b| b.write_segments(path, segments))
    }

    // `zero_copy_reads` stays `false` (the default): after a failover, reads
    // may straddle tiers, so adjacent ranges need not share an allocation.

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.write_op(path, |b| b.append(path, data))
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.read_op(|b| b.read(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.read_op(|b| b.read_range(path, offset, len))
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.read_op(|b| b.size(path))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.primary.exists(path).unwrap_or(false)
            || self.secondary.exists(path).unwrap_or(false))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut all = self.primary.list(prefix).unwrap_or_default();
        all.extend(self.secondary.list(prefix).unwrap_or_default());
        all.sort();
        all.dedup();
        Ok(all)
    }

    fn delete(&self, path: &str) -> Result<()> {
        // Remove from both tiers; succeed if either held the object.
        let p = self.primary.delete(path);
        let s = self.secondary.delete(path);
        match (p, s) {
            (Err(e), Err(_)) => Err(e),
            _ => Ok(()),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.write_op(from, |b| b.rename(from, to))
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.write_op(target, |b| b.concat(target, parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flaky::{FailureMode, FlakyBackend};
    use crate::memory::MemoryBackend;
    use crate::StorageError;

    fn dead_primary(failures: u32) -> DynBackend {
        Arc::new(FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, failures))
    }

    #[test]
    fn trips_after_threshold_and_routes_to_secondary() {
        let secondary: DynBackend = Arc::new(MemoryBackend::new());
        let fb = FallbackBackend::with_threshold(dead_primary(u32::MAX), secondary.clone(), 2);
        let data = Bytes::from_static(b"x");

        // First failure: surfaced so the caller's retry loop sees it.
        assert!(matches!(fb.write("a", data.clone()), Err(StorageError::Injected { .. })));
        assert!(!fb.is_degraded());
        // Second failure reaches the threshold: trip + complete on secondary.
        fb.write("a", data.clone()).unwrap();
        assert!(fb.is_degraded());
        assert!(secondary.exists("a").unwrap());
        assert_eq!(fb.events(), vec![FailoverEvent { path: "a".into(), failures: 2 }]);

        // Subsequent writes go straight to the secondary.
        fb.write("b", data).unwrap();
        assert!(secondary.exists("b").unwrap());
        assert_eq!(fb.events().len(), 1, "trip recorded once");
    }

    #[test]
    fn reads_straddle_the_failover_boundary() {
        let primary: DynBackend = Arc::new(MemoryBackend::new());
        let secondary: DynBackend = Arc::new(MemoryBackend::new());
        let fb = FallbackBackend::with_threshold(primary.clone(), secondary.clone(), 1);
        fb.write("pre", Bytes::from_static(b"old")).unwrap();
        assert!(!fb.is_degraded());

        // Force the trip via a secondary-only write.
        primary.write("sentinel", Bytes::from_static(b"s")).unwrap();
        fb.tripped.store(true, Ordering::Release);
        fb.write("post", Bytes::from_static(b"new")).unwrap();

        assert_eq!(&fb.read("pre").unwrap()[..], b"old");
        assert_eq!(&fb.read("post").unwrap()[..], b"new");
        assert!(fb.exists("pre").unwrap() && fb.exists("post").unwrap());
        let listed = fb.list("p").unwrap();
        assert!(listed.contains(&"pre".to_string()) && listed.contains(&"post".to_string()));
    }

    #[test]
    fn observer_fires_exactly_once() {
        let fired = Arc::new(AtomicU32::new(0));
        let fb = FallbackBackend::with_threshold(
            dead_primary(u32::MAX),
            Arc::new(MemoryBackend::new()),
            1,
        );
        let counter = fired.clone();
        fb.set_observer(Arc::new(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        }));
        fb.write("a", Bytes::from_static(b"1")).unwrap();
        fb.write("b", Bytes::from_static(b"2")).unwrap();
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }
}
