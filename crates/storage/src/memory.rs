//! In-memory object store.
//!
//! Serves three roles: unit-test backend, the engine's shared-memory staging
//! area (the paper dumps serialized files into `/dev/shm` before upload),
//! and Gemini-style in-memory checkpoint storage for fast failure recovery.

use crate::{Result, StorageBackend, StorageError};
use bytes::{Bytes, BytesMut};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// A thread-safe in-memory object store keyed by path.
#[derive(Default)]
pub struct MemoryBackend {
    objects: RwLock<BTreeMap<String, Bytes>>,
}

impl MemoryBackend {
    /// Create an empty store.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    /// Total bytes currently stored (capacity monitoring).
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }

    /// Number of objects stored.
    pub fn num_objects(&self) -> usize {
        self.objects.read().len()
    }
}

impl StorageBackend for MemoryBackend {
    fn name(&self) -> &str {
        "memory"
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.objects.write().insert(path.to_string(), data);
        Ok(())
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        // Single-segment writes store the caller's Bytes zero-copy; the
        // multi-segment case pays exactly one concatenation.
        let data = match segments {
            [one] => one.clone(),
            _ => {
                let total: usize = segments.iter().map(Bytes::len).sum();
                let mut buf = BytesMut::with_capacity(total);
                for seg in segments {
                    buf.extend_from_slice(seg);
                }
                buf.freeze()
            }
        };
        self.objects.write().insert(path.to_string(), data);
        Ok(())
    }

    fn zero_copy_reads(&self) -> bool {
        // `read_range` returns `Bytes::slice` views of the single stored
        // allocation, so adjacent ranges of one object share a parent.
        true
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        let mut objects = self.objects.write();
        let entry = objects.entry(path.to_string()).or_default();
        let mut buf = BytesMut::with_capacity(entry.len() + data.len());
        buf.extend_from_slice(entry);
        buf.extend_from_slice(data);
        *entry = buf.freeze();
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let objects = self.objects.read();
        let obj = objects.get(path).ok_or_else(|| StorageError::NotFound(path.to_string()))?;
        let size = obj.len() as u64;
        if offset + len > size {
            return Err(StorageError::RangeOutOfBounds {
                path: path.to_string(),
                size,
                offset,
                len,
            });
        }
        Ok(obj.slice(offset as usize..(offset + len) as usize))
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.objects
            .read()
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.objects.read().contains_key(path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .objects
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.objects
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut objects = self.objects.write();
        let data = objects.remove(from).ok_or_else(|| StorageError::NotFound(from.to_string()))?;
        objects.insert(to.to_string(), data);
        Ok(())
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        let mut objects = self.objects.write();
        let mut buf = BytesMut::new();
        for p in parts {
            let data = objects.get(p).ok_or_else(|| StorageError::NotFound(p.clone()))?;
            buf.extend_from_slice(data);
        }
        for p in parts {
            objects.remove(p);
        }
        objects.insert(target.to_string(), buf.freeze());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        crate::conformance::run_all(&MemoryBackend::new());
    }

    #[test]
    fn capacity_accounting() {
        let m = MemoryBackend::new();
        m.write("a", Bytes::from_static(b"1234")).unwrap();
        m.write("b", Bytes::from_static(b"56")).unwrap();
        assert_eq!(m.total_bytes(), 6);
        assert_eq!(m.num_objects(), 2);
        m.delete("a").unwrap();
        assert_eq!(m.total_bytes(), 2);
    }

    #[test]
    fn concurrent_ranged_reads() {
        let m = std::sync::Arc::new(MemoryBackend::new());
        let data: Vec<u8> = (0..=255u8).cycle().take(1 << 16).collect();
        m.write("big", Bytes::from(data.clone())).unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = m.clone();
            let expected = data.clone();
            handles.push(std::thread::spawn(move || {
                let chunk = (1u64 << 16) / 8;
                let got = m.read_range("big", t * chunk, chunk).unwrap();
                assert_eq!(&got[..], &expected[(t * chunk) as usize..((t + 1) * chunk) as usize]);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
