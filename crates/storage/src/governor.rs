//! Cross-job storage-bandwidth governance.
//!
//! A [`BandwidthGovernor`] is the admission point every governed I/O byte
//! passes through before touching the backend: [`GovernedBackend`] wraps
//! any [`StorageBackend`] and calls [`BandwidthGovernor::throttle`] with
//! the job name, operation class and byte count of each transfer. The
//! governor blocks the calling thread until the transfer may proceed.
//!
//! The trait lives here (not in the coordinator crate) so the storage
//! layer stays the single choke point: the coordinator's weighted-fair
//! scheduler, a test's recording stub, and [`NoopGovernor`] are all just
//! implementations.

use crate::{DynBackend, Result, StorageBackend};
use bytes::Bytes;
use std::sync::Arc;

/// Which side of storage a governed transfer moves bytes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Data flowing into storage (write, append, upload).
    Write,
    /// Data flowing out of storage (read, ranged read).
    Read,
}

/// Admission point for storage bandwidth: blocks until `bytes` of I/O by
/// `job` may proceed.
///
/// Implementations must be starvation-free: a transfer that waits must
/// eventually be released regardless of competing load (the coordinator's
/// scheduler guarantees this via weighted fair queuing).
pub trait BandwidthGovernor: Send + Sync {
    /// Block the calling thread until `job` may move `bytes` of `op` I/O.
    /// Zero-byte transfers should return immediately.
    fn throttle(&self, job: &str, op: OpClass, bytes: u64);

    /// Name reported in instrumentation attributes.
    fn name(&self) -> &str {
        "governor"
    }
}

/// Shared governor handle.
pub type DynGovernor = Arc<dyn BandwidthGovernor>;

/// A governor that admits everything immediately (the ungoverned default).
pub struct NoopGovernor;

impl BandwidthGovernor for NoopGovernor {
    fn throttle(&self, _job: &str, _op: OpClass, _bytes: u64) {}

    fn name(&self) -> &str {
        "noop"
    }
}

/// A [`StorageBackend`] whose transfers pass through a
/// [`BandwidthGovernor`] tagged with a job name. Metadata operations
/// (list, exists, rename, ...) are not governed — only byte movement.
pub struct GovernedBackend {
    inner: DynBackend,
    governor: DynGovernor,
    job: String,
}

impl GovernedBackend {
    /// Wrap `inner` so every transfer by `job` is admitted by `governor`.
    pub fn new(
        inner: DynBackend,
        governor: DynGovernor,
        job: impl Into<String>,
    ) -> GovernedBackend {
        GovernedBackend { inner, governor, job: job.into() }
    }

    /// The job this backend's transfers are accounted to.
    pub fn job(&self) -> &str {
        &self.job
    }
}

impl StorageBackend for GovernedBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        let mut attrs = vec![("governor", self.governor.name().to_string())];
        attrs.extend(self.inner.op_attrs());
        attrs
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.governor.throttle(&self.job, OpClass::Write, data.len() as u64);
        self.inner.write(path, data)
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        let total: usize = segments.iter().map(Bytes::len).sum();
        self.governor.throttle(&self.job, OpClass::Write, total as u64);
        self.inner.write_segments(path, segments)
    }

    fn zero_copy_reads(&self) -> bool {
        self.inner.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        self.governor.throttle(&self.job, OpClass::Write, data.len() as u64);
        self.inner.append(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        // Admission before the transfer: governed reads account the size
        // first so a large read cannot overshoot its grant.
        let len = self.inner.size(path).unwrap_or(0);
        self.governor.throttle(&self.job, OpClass::Read, len);
        self.inner.read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.governor.throttle(&self.job, OpClass::Read, len);
        self.inner.read_range(path, offset, len)
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.inner.delete(path)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        self.inner.concat(target, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Records total throttled bytes per class.
    struct Recording {
        writes: AtomicU64,
        reads: AtomicU64,
    }

    impl BandwidthGovernor for Recording {
        fn throttle(&self, job: &str, op: OpClass, bytes: u64) {
            assert_eq!(job, "j1");
            match op {
                OpClass::Write => self.writes.fetch_add(bytes, Ordering::SeqCst),
                OpClass::Read => self.reads.fetch_add(bytes, Ordering::SeqCst),
            };
        }
    }

    #[test]
    fn conformance_under_noop_governor() {
        let b = GovernedBackend::new(Arc::new(MemoryBackend::new()), Arc::new(NoopGovernor), "job");
        crate::conformance::run_all(&b);
    }

    #[test]
    fn transfers_are_accounted_to_the_job() {
        let gov = Arc::new(Recording { writes: AtomicU64::new(0), reads: AtomicU64::new(0) });
        let b = GovernedBackend::new(Arc::new(MemoryBackend::new()), gov.clone(), "j1");
        b.write("a", Bytes::from(vec![0u8; 100])).unwrap();
        b.append("a", &[1u8; 20]).unwrap();
        b.write_segments("b", &[Bytes::from(vec![0u8; 30]), Bytes::from(vec![0u8; 10])]).unwrap();
        assert_eq!(gov.writes.load(Ordering::SeqCst), 160);
        b.read("a").unwrap();
        b.read_range("a", 0, 50).unwrap();
        assert_eq!(gov.reads.load(Ordering::SeqCst), 120 + 50);
        // Metadata ops are ungoverned: nothing further accumulates.
        b.list("").unwrap();
        b.exists("a").unwrap();
        assert_eq!(gov.writes.load(Ordering::SeqCst), 160);
        assert_eq!(gov.reads.load(Ordering::SeqCst), 170);
    }
}
