//! Span instrumentation for storage backends.
//!
//! [`InstrumentedBackend`] wraps any [`StorageBackend`] and emits one
//! uncounted span per data-plane operation (`storage/<backend>/<op>`),
//! carrying the object path, bytes moved, the backend's [`op_attrs`]
//! (tier state, throttle profile, ...), and the error text on failure.
//! Spans parent themselves under whatever workflow/engine span the calling
//! thread has entered (see `bcp_monitor::span`), so a trace shows exactly
//! which upload issued which write — the paper's §5.3 storage-side view.
//!
//! Metadata-only operations (`exists`, `size`, `list`) are deliberately
//! not traced: the engine issues them in tight loops and the spans would be
//! noise; backends that care (HDFS) meter them in their own stats.
//!
//! [`op_attrs`]: StorageBackend::op_attrs

use crate::{DynBackend, Result, StorageBackend};
use bcp_monitor::{MetricsSink, SpanGuard};
use bytes::Bytes;

/// A [`StorageBackend`] decorator that traces every data-plane operation.
pub struct InstrumentedBackend {
    inner: DynBackend,
    sink: MetricsSink,
    rank: usize,
}

impl InstrumentedBackend {
    /// Wrap `inner`, emitting spans into `sink`. `rank` is used when an
    /// operation happens outside any entered workflow span.
    pub fn new(inner: DynBackend, sink: MetricsSink, rank: usize) -> InstrumentedBackend {
        InstrumentedBackend { inner, sink, rank }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &DynBackend {
        &self.inner
    }

    fn start_span(&self, op: &str, path: &str) -> SpanGuard {
        let mut span = self
            .sink
            .span_in_context(format!("storage/{}/{op}", self.inner.name()), self.rank)
            .uncounted()
            .path(path);
        for (key, value) in self.inner.op_attrs() {
            span.set_attr(key, value);
        }
        span
    }
}

/// Stamp the error text onto the span when the operation failed.
fn finish<T>(span: &mut SpanGuard, result: &Result<T>) {
    if let Err(e) = result {
        span.set_attr("error", e.to_string());
    }
}

impl StorageBackend for InstrumentedBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn op_attrs(&self) -> Vec<(&'static str, String)> {
        self.inner.op_attrs()
    }

    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        let mut span = self.start_span("write", path);
        span.add_bytes(data.len() as u64);
        let result = self.inner.write(path, data);
        finish(&mut span, &result);
        result
    }

    fn write_segments(&self, path: &str, segments: &[Bytes]) -> Result<()> {
        let mut span = self.start_span("write_segments", path);
        span.add_bytes(segments.iter().map(|s| s.len() as u64).sum());
        span.set_attr("segments", segments.len().to_string());
        let result = self.inner.write_segments(path, segments);
        finish(&mut span, &result);
        result
    }

    fn zero_copy_reads(&self) -> bool {
        self.inner.zero_copy_reads()
    }

    fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        let mut span = self.start_span("append", path);
        span.add_bytes(data.len() as u64);
        let result = self.inner.append(path, data);
        finish(&mut span, &result);
        result
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        let mut span = self.start_span("read", path);
        let result = self.inner.read(path);
        if let Ok(data) = &result {
            span.add_bytes(data.len() as u64);
        }
        finish(&mut span, &result);
        result
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let mut span = self.start_span("read_range", path);
        span.set_attr("offset", offset.to_string());
        let result = self.inner.read_range(path, offset, len);
        if let Ok(data) = &result {
            span.add_bytes(data.len() as u64);
        }
        finish(&mut span, &result);
        result
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        let mut span = self.start_span("delete", path);
        let result = self.inner.delete(path);
        finish(&mut span, &result);
        result
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut span = self.start_span("rename", from);
        span.set_attr("to", to);
        let result = self.inner.rename(from, to);
        finish(&mut span, &result);
        result
    }

    fn concat(&self, target: &str, parts: &[String]) -> Result<()> {
        let mut span = self.start_span("concat", target);
        span.set_attr("parts", parts.len().to_string());
        let result = self.inner.concat(target, parts);
        finish(&mut span, &result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use bcp_monitor::MetricsHub;
    use std::sync::Arc;

    #[test]
    fn conformance_still_holds_when_instrumented() {
        let hub = MetricsHub::new();
        let b = InstrumentedBackend::new(Arc::new(MemoryBackend::new()), hub.sink(), 0);
        crate::conformance::run_all(&b);
        assert!(!hub.spans().is_empty());
    }

    #[test]
    fn ops_emit_uncounted_spans_with_bytes_path_and_parent() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        let b = InstrumentedBackend::new(Arc::new(MemoryBackend::new()), sink.clone(), 4);
        {
            let phase = sink.span("save/upload", 4, 9);
            let _e = phase.enter();
            b.write("ckpt/f.bin", Bytes::from_static(b"abcdef")).unwrap();
        }
        let err = b.read("ckpt/missing").unwrap_err();
        let spans = hub.spans();
        let write = spans.iter().find(|s| s.name == "storage/memory/write").unwrap();
        assert!(!write.counted);
        assert_eq!(write.io_bytes, 6);
        assert_eq!(write.path.as_deref(), Some("ckpt/f.bin"));
        assert_eq!((write.rank, write.step), (4, 9));
        assert!(write.parent.is_some(), "parented under the entered phase span");
        let read = spans.iter().find(|s| s.name == "storage/memory/read").unwrap();
        assert_eq!(read.parent, None, "no entered context: falls back to a root");
        assert_eq!(read.rank, 4);
        assert_eq!(read.attrs["error"], err.to_string());
    }
}
